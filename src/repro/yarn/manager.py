"""The YARN ResourceManager with capacity-style queues and preemption.

Applications are submitted to priority queues. A request from a
higher-priority queue that cannot be satisfied preempts containers of
lower-priority applications: the victim's preemption callback is invoked
(YARN first "asks the AM to decrease usage") and the container is killed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import YarnError
from repro.yarn.resources import Container, NodeManager, NodeReport

PreemptionCallback = Callable[[Container], None]


@dataclass
class YarnApplication:
    """An application (and implicitly its ApplicationMaster)."""

    app_id: str
    queue: str
    containers: List[Container] = field(default_factory=list)
    on_preempt: Optional[PreemptionCallback] = None

    def live_containers(self) -> List[Container]:
        return [c for c in self.containers if c.running]


class ResourceManager:
    """Cluster-wide resource arbitration."""

    def __init__(self, queue_priorities: Dict[str, int] | None = None,
                 registry=None, events=None):
        # Higher number = higher priority. "default" sits in the middle.
        self.queue_priorities = queue_priorities or {"default": 5}
        self.events = events  # ClusterEventLog when part of a cluster
        self.node_managers: Dict[str, NodeManager] = {}
        self.applications: Dict[str, YarnApplication] = {}
        self._container_ids = itertools.count(1)
        self._app_ids = itertools.count(1)
        if registry is None:
            from repro.obs import MetricsRegistry
            registry = MetricsRegistry()
        self.registry = registry
        self._containers_started = registry.counter(
            "yarn_containers_started_total",
            "Containers launched, by queue",
            labels=("queue",),
        )
        self._preemptions = registry.counter(
            "yarn_preemptions_total",
            "Containers killed to make room for higher-priority queues",
        )
        self._apps_submitted = registry.counter(
            "yarn_applications_total", "Applications submitted"
        )
        self._containers_running = registry.gauge(
            "yarn_containers_running", "Currently running containers",
            sticky=True,
        )

    # -- cluster membership ----------------------------------------------------

    def register_node(self, node: str, cores: int, memory_mb: int) -> None:
        self.node_managers[node] = NodeManager(node, cores, memory_mb)

    def unregister_node(self, node: str) -> None:
        nm = self.node_managers.pop(node, None)
        if nm is None:
            raise YarnError(f"unknown node {node}")
        for container in list(nm.containers.values()):
            self._kill(container)
        if self.events is not None:
            self.events.emit("yarn", "node_unregistered", node=node)

    def cluster_node_reports(self) -> List[NodeReport]:
        """What dbAgent asks for when sizing the worker set."""
        return [nm.report() for nm in self.node_managers.values()]

    # -- application lifecycle ---------------------------------------------------

    def submit_application(self, name: str, queue: str = "default",
                           on_preempt: PreemptionCallback | None = None
                           ) -> YarnApplication:
        if queue not in self.queue_priorities:
            raise YarnError(f"unknown queue {queue}")
        app = YarnApplication(
            app_id=f"{name}-{next(self._app_ids):04d}",
            queue=queue,
            on_preempt=on_preempt,
        )
        self.applications[app.app_id] = app
        self._apps_submitted.inc()
        return app

    def kill_application(self, app_id: str) -> None:
        app = self.applications.pop(app_id, None)
        if app is None:
            raise YarnError(f"unknown application {app_id}")
        for container in app.live_containers():
            self._kill(container)

    # -- allocation ---------------------------------------------------------------

    def request_container(self, app: YarnApplication, node: str,
                          cores: int, memory_mb: int,
                          allow_preemption: bool = True) -> Container:
        """Allocate a container on a specific node (VectorH needs locality)."""
        nm = self.node_managers.get(node)
        if nm is None:
            raise YarnError(f"unknown node {node}")
        if not nm.can_fit(cores, memory_mb) and allow_preemption:
            self._preempt_for(app, nm, cores, memory_mb)
        if not nm.can_fit(cores, memory_mb):
            raise YarnError(
                f"insufficient resources on {node} for {app.app_id}"
            )
        container = Container(
            container_id=next(self._container_ids),
            node=node, cores=cores, memory_mb=memory_mb, app_id=app.app_id,
        )
        nm.launch(container)
        app.containers.append(container)
        self._containers_started.inc(queue=app.queue)
        self._containers_running.inc()
        return container

    def release_container(self, container: Container) -> None:
        self._kill(container, notify=False)

    # -- preemption -----------------------------------------------------------------

    def _priority(self, app_id: str) -> int:
        app = self.applications.get(app_id)
        if app is None:
            return -1
        return self.queue_priorities.get(app.queue, 0)

    def _preempt_for(self, app: YarnApplication, nm: NodeManager,
                     cores: int, memory_mb: int) -> None:
        """Kill lower-priority containers on this node until the ask fits."""
        my_priority = self.queue_priorities[app.queue]
        victims = sorted(
            (c for c in nm.containers.values()
             if self._priority(c.app_id) < my_priority),
            key=lambda c: self._priority(c.app_id),
        )
        for victim in victims:
            if nm.can_fit(cores, memory_mb):
                break
            self._kill(victim)
            self._preemptions.inc()
            if self.events is not None:
                self.events.emit(
                    "yarn", "preemption", node=nm.node,
                    victim_app=victim.app_id, for_app=app.app_id,
                )

    def _kill(self, container: Container, notify: bool = True) -> None:
        nm = self.node_managers.get(container.node)
        if nm is not None and container.container_id in nm.containers:
            nm.kill(container.container_id)
        if container.running:
            self._containers_running.dec()
        container.running = False
        app = self.applications.get(container.app_id)
        if app is not None:
            if container in app.containers:
                app.containers.remove(container)
            if notify and app.on_preempt is not None:
                app.on_preempt(container)
