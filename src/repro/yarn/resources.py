"""Containers and per-node resource tracking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import YarnError


@dataclass
class Container:
    """A YARN container: a (cores, memory) grant on one node."""

    container_id: int
    node: str
    cores: int
    memory_mb: int
    app_id: str
    running: bool = True


@dataclass
class NodeReport:
    """Snapshot of one node's resources, as returned to YARN clients."""

    node: str
    total_cores: int
    total_memory_mb: int
    used_cores: int
    used_memory_mb: int

    @property
    def free_cores(self) -> int:
        return self.total_cores - self.used_cores

    @property
    def free_memory_mb(self) -> int:
        return self.total_memory_mb - self.used_memory_mb


class NodeManager:
    """Tracks containers and enforces capacity on one node."""

    def __init__(self, node: str, cores: int, memory_mb: int):
        self.node = node
        self.total_cores = cores
        self.total_memory_mb = memory_mb
        self.containers: Dict[int, Container] = {}

    @property
    def used_cores(self) -> int:
        return sum(c.cores for c in self.containers.values())

    @property
    def used_memory_mb(self) -> int:
        return sum(c.memory_mb for c in self.containers.values())

    def can_fit(self, cores: int, memory_mb: int) -> bool:
        return (self.used_cores + cores <= self.total_cores
                and self.used_memory_mb + memory_mb <= self.total_memory_mb)

    def launch(self, container: Container) -> None:
        if not self.can_fit(container.cores, container.memory_mb):
            raise YarnError(
                f"node {self.node} cannot fit container "
                f"({container.cores} cores, {container.memory_mb} MB)"
            )
        self.containers[container.container_id] = container

    def kill(self, container_id: int) -> Container:
        container = self.containers.pop(container_id, None)
        if container is None:
            raise YarnError(f"no container {container_id} on {self.node}")
        container.running = False
        return container

    def report(self) -> NodeReport:
        return NodeReport(
            node=self.node,
            total_cores=self.total_cores,
            total_memory_mb=self.total_memory_mb,
            used_cores=self.used_cores,
            used_memory_mb=self.used_memory_mb,
        )
