"""dbAgent: VectorH's out-of-band YARN client (paper section 4).

dbAgent (i) selects the worker set from the viable-machine list using YARN
node reports and HDFS block locality, (ii) represents VectorH's footprint to
YARN as *slices* -- one AM with dummy containers per resource increment so
the footprint can grow and shrink without restarting the database -- and
(iii) reacts to preemption by instructing the session master to reduce the
cores/memory used by workload management.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import YarnError
from repro.flow.assignment import select_worker_set
from repro.hdfs.cluster import HdfsCluster
from repro.yarn.manager import ResourceManager, YarnApplication
from repro.yarn.resources import Container

FootprintCallback = Callable[[Dict[str, int]], None]


@dataclass
class _Slice:
    """One resource slice: a dummy container per worker node."""

    app: YarnApplication
    cores_per_node: int
    memory_mb_per_node: int
    containers: List[Container] = field(default_factory=list)


class DbAgent:
    """Negotiates resources for a VectorH worker set."""

    def __init__(
        self,
        rm: ResourceManager,
        hdfs: HdfsCluster,
        viable_machines: List[str],
        queue: str = "default",
        slice_cores: int = 4,
        slice_memory_mb: int = 8192,
    ):
        self.rm = rm
        self.hdfs = hdfs
        self.viable_machines = list(viable_machines)
        self.queue = queue
        self.slice_cores = slice_cores
        self.slice_memory_mb = slice_memory_mb
        self.worker_set: List[str] = []
        self.slices: List[_Slice] = []
        #: called with {node: cores} whenever the footprint changes
        self.on_footprint_change: Optional[FootprintCallback] = None
        #: live load probe wired by the cluster to
        #: :meth:`repro.workload.WorkloadManager.load`: a callable
        #: returning {"queued": .., "running": .., "running_streams": ..}
        self.workload_probe: Optional[Callable[[], Dict[str, int]]] = None
        #: ClusterEventLog wired by the cluster; preemptions are visible
        #: cluster events (a preemption storm is a chaos fault kind)
        self.events = None

    # -- worker-set selection ---------------------------------------------------

    def local_bytes_per_node(self, path_prefix: str = "") -> Dict[str, int]:
        """How many HDFS bytes of VectorH data each machine stores locally."""
        totals: Dict[str, int] = {m: 0 for m in self.viable_machines}
        for path in self.hdfs.list_files(path_prefix):
            size = self.hdfs.file_size(path)
            for holder in self.hdfs.replica_locations(path):
                if holder in totals:
                    totals[holder] += size
        return totals

    def negotiate_worker_set(self, num_workers: int,
                             path_prefix: str = "") -> List[str]:
        """Pick the N viable machines with most locality and free resources."""
        reports = {r.node: r for r in self.rm.cluster_node_reports()}
        has_resources = {
            m: (m in reports
                and reports[m].free_cores >= self.slice_cores
                and reports[m].free_memory_mb >= self.slice_memory_mb)
            for m in self.viable_machines
        }
        alive = set(self.hdfs.alive_nodes())
        for m in self.viable_machines:
            if m not in alive:
                has_resources[m] = False
        self.worker_set = select_worker_set(
            self.viable_machines, num_workers,
            self.local_bytes_per_node(path_prefix), has_resources,
        )
        if not self.worker_set:
            raise YarnError("no viable machines with free resources")
        return self.worker_set

    # -- footprint management ------------------------------------------------------

    def grow_footprint(self, num_slices: int = 1) -> int:
        """Start ``num_slices`` dummy-container slices across the worker set."""
        started = 0
        for _ in range(num_slices):
            app = self.rm.submit_application(
                "vectorh-slice", self.queue, on_preempt=self._handle_preempt
            )
            new_slice = _Slice(app, self.slice_cores, self.slice_memory_mb)
            try:
                for node in self.worker_set:
                    container = self.rm.request_container(
                        app, node, self.slice_cores, self.slice_memory_mb,
                        allow_preemption=False,
                    )
                    new_slice.containers.append(container)
            except YarnError:
                self.rm.kill_application(app.app_id)
                break
            self.slices.append(new_slice)
            started += 1
        if started:
            self._notify()
        return started

    def shrink_footprint(self, num_slices: int = 1) -> int:
        """Stop slices voluntarily (e.g. idle workload, automatic footprint)."""
        stopped = 0
        for _ in range(min(num_slices, len(self.slices))):
            victim = self.slices.pop()
            self.rm.kill_application(victim.app.app_id)
            stopped += 1
        if stopped:
            self._notify()
        return stopped

    def negotiate_to_target(self, target_slices: int) -> int:
        """Periodic renegotiation back toward the configured target."""
        if len(self.slices) < target_slices:
            self.grow_footprint(target_slices - len(self.slices))
        elif len(self.slices) > target_slices:
            self.shrink_footprint(len(self.slices) - target_slices)
        return len(self.slices)

    def current_footprint(self) -> Dict[str, int]:
        """{node: cores} currently granted to VectorH."""
        footprint: Dict[str, int] = {node: 0 for node in self.worker_set}
        for sl in self.slices:
            for container in sl.containers:
                if container.running:
                    footprint[container.node] = (
                        footprint.get(container.node, 0) + container.cores
                    )
        return footprint

    # -- automatic footprint (paper section 4) --------------------------------

    def auto_footprint(self, active_queries: Optional[int] = None,
                       queries_per_slice: int = 2,
                       min_slices: int = 1,
                       max_slices: int = 8) -> int:
        """Self-regulate the desired core/memory footprint from workload.

        "Using the automatic footprint option, VectorH can also
        self-regulate its desired core/memory footprint depending on the
        query workload." One slice serves ``queries_per_slice`` concurrent
        queries; the footprint follows the load within [min, max].

        With no explicit ``active_queries`` the agent consults the
        workload manager's live probe: queued + running queries drive
        the slice count, and the running *stream* count (one stream per
        worker per admitted query) sets a floor of enough slice cores
        per node to give every live stream a core.
        """
        need_for_streams = 0
        if active_queries is None:
            if self.workload_probe is None:
                active_queries = 0
            else:
                probe = self.workload_probe()
                active_queries = (int(probe.get("queued", 0))
                                  + int(probe.get("running", 0)))
                streams = int(probe.get("running_streams", 0))
                nodes = max(1, len(self.worker_set))
                streams_per_node = -(-streams // nodes)
                need_for_streams = -(-streams_per_node
                                     // max(1, self.slice_cores))
        desired = max(min_slices, need_for_streams,
                      min(max_slices,
                          -(-int(active_queries) // queries_per_slice)))
        desired = min(max_slices, desired)
        return self.negotiate_to_target(desired)

    # -- preemption ---------------------------------------------------------------

    def _handle_preempt(self, container: Container) -> None:
        """YARN killed one of our dummies: shrink workload management."""
        for sl in self.slices:
            if container in sl.containers:
                sl.containers.remove(container)
        self.slices = [sl for sl in self.slices if sl.containers]
        if self.events is not None:
            self.events.emit("yarn", "slice_preempted", node=container.node,
                             slices=len(self.slices))
        self._notify()

    def _notify(self) -> None:
        if self.on_footprint_change is not None:
            self.on_footprint_change(self.current_footprint())
