"""Queryable introspection: vh$ system tables and EXPLAIN ANALYZE.

The cluster describes itself through its own SQL engine:

* **System tables** -- :class:`SystemCatalog` registers seventeen virtual
  ``vh$`` tables (:data:`SYSTEM_TABLES`) whose partitions are live
  snapshots of the metrics registry, the HDFS block map, per-column
  compression statistics, PDT overlay sizes, the cluster event log, the
  workload manager's query/session records (including queued, running
  and cancelled queries), the chaos controller's fault plan, the
  cardinality feedback store, the flight recorder's sampled metric
  history, alert ledger and persistent query log, and the continuous
  profiler's per-operator stats and top-k hot paths. A :class:`VirtualTable` quacks like a
  :class:`~repro.storage.table.StoredTable` (schema, replication,
  ``scan_partition``), so the binder, rewriter and streaming executor
  treat them exactly like replicated base tables -- a ``SELECT`` against
  ``vh$metrics`` runs through the normal MPP path.

* **EXPLAIN ANALYZE** -- :func:`explain_analyze` executes a logical plan
  and renders the physical plan annotated with per-operator *actuals*:
  rows produced, simulated stream time, wire bytes per exchange (down to
  the individual node->node link), MinMax blocks skipped vs scanned, and
  the scan-locality fraction, all reconciled against a registry snapshot
  diff taken around the execution.

Import note: this module pulls in storage/mpp layers, so ``repro.obs``
must not import it eagerly (``repro.obs.events`` has no such cycle and
is exported there instead).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import StorageError
from repro.common.types import FLOAT64, INT64, STRING, ColumnType
from repro.mpp import plan as P
from repro.storage.schema import Column, TableSchema
from repro.storage.table import ScanResult

SYSTEM_TABLE_PREFIX = "vh$"


# ---------------------------------------------------------------------------
# Virtual tables
# ---------------------------------------------------------------------------

class VirtualTable:
    """A system table: a schema plus a snapshot function.

    Duck-typed against :class:`~repro.storage.table.StoredTable` for the
    read path only -- replicated (every node could compute the snapshot),
    single "partition", no storage, no PDTs. The snapshot is computed at
    scan time, so a query sees the cluster state at the moment its scan
    operator first pulls.
    """

    is_virtual = True
    is_replicated = True
    n_partitions = 1
    #: no stored partitions: cardinality estimates see 0 stable rows
    partitions: Tuple = ()

    def __init__(self, cluster, schema: TableSchema,
                 snapshot_fn: Callable[[object], List[tuple]]):
        self.cluster = cluster
        self.schema = schema
        self._snapshot_fn = snapshot_fn

    @property
    def name(self) -> str:
        return self.schema.name

    def _decimal_scale(self, name: str) -> Optional[int]:
        return None

    def snapshot_rows(self) -> List[tuple]:
        """The current rows, in schema column order."""
        return self._snapshot_fn(self.cluster)

    def scan_partition(self, pid: int, columns: Sequence[str],
                       predicates: Sequence[Tuple[str, str, object]] = (),
                       trans=None, reader: Optional[str] = None,
                       pool=None) -> ScanResult:
        rows = self.snapshot_rows()
        arrays = _columns_from_rows(self.schema, rows)
        n = len(rows)
        cols = {c: arrays[c] for c in dict.fromkeys(columns)}
        return ScanResult(cols, np.arange(n, dtype=np.int64), n)


def _columns_from_rows(schema: TableSchema,
                       rows: List[tuple]) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for i, col in enumerate(schema.columns):
        values = [r[i] for r in rows]
        if col.ctype.is_string:
            arr = np.empty(len(values), dtype=object)
            arr[:] = [str(v) for v in values]
        else:
            arr = np.asarray(values, dtype=col.ctype.dtype)
        out[col.name] = arr
    return out


# ---------------------------------------------------------------------------
# Snapshot builders (one per system table; rows in schema column order)
# ---------------------------------------------------------------------------

def _labels_text(family, key) -> str:
    return ",".join(f"{n}={v}" for n, v in family.labelset(key).items())


def _metrics_rows(cluster) -> List[tuple]:
    rows = []
    for family in cluster.registry.families():
        snap = family.snapshot()
        if family.kind == "histogram":
            for key, data in sorted(snap.items()):
                labels = _labels_text(family, key)
                rows.append((f"{family.name}_count", family.kind, labels,
                             float(data["count"])))
                rows.append((f"{family.name}_sum", family.kind, labels,
                             float(data["sum"])))
        else:
            for key, value in sorted(snap.items()):
                rows.append((family.name, family.kind,
                             _labels_text(family, key), float(value)))
    return rows


def _blocks_rows(cluster) -> List[tuple]:
    rows = []
    for tname in sorted(cluster.tables):
        stored = cluster.tables[tname]
        for pid, store in enumerate(stored.partitions):
            for col in stored.schema.column_names:
                for ref in store.blocks.get(col, ()):
                    rows.append((tname, pid, col, ref.path, ref.row_start,
                                 ref.n_rows, ref.length, ref.scheme))
    return rows


def _partitions_rows(cluster) -> List[tuple]:
    rows = []
    for tname in sorted(cluster.tables):
        stored = cluster.tables[tname]
        for pid in range(stored.n_partitions):
            node = cluster.responsible(tname, pid)
            store = stored.partitions[pid]
            paths = store.file_paths()
            replicas = set()
            for path in paths:
                replicas.update(
                    h for h in cluster.hdfs.replica_locations(path)
                    if cluster.hdfs.nodes[h].alive
                )
            local = int(all(cluster.hdfs.is_local(p, node) for p in paths))
            rows.append((tname, pid, node, len(replicas), store.n_stable,
                         stored.pdt[pid].total_entries(),
                         store.total_bytes(), local))
    return rows


def _compression_rows(cluster) -> List[tuple]:
    totals: Dict[Tuple[str, str, str], Dict[str, int]] = {}
    for tname in sorted(cluster.tables):
        stored = cluster.tables[tname]
        for store in stored.partitions:
            for (col, scheme), stats in store.compression_stats().items():
                entry = totals.setdefault(
                    (tname, col, scheme),
                    {"blocks": 0, "raw_bytes": 0, "encoded_bytes": 0},
                )
                for k in entry:
                    entry[k] += stats[k]
    rows = []
    for (tname, col, scheme), entry in sorted(totals.items()):
        encoded = entry["encoded_bytes"]
        ratio = entry["raw_bytes"] / encoded if encoded else 0.0
        rows.append((tname, col, scheme, entry["blocks"],
                     entry["raw_bytes"], encoded, ratio))
    return rows


def _pdt_rows(cluster) -> List[tuple]:
    rows = []
    for tname in sorted(cluster.tables):
        stored = cluster.tables[tname]
        for pid, stack in enumerate(stored.pdt):
            rows.append((tname, pid, len(stack.read), len(stack.write),
                         stack.total_entries(), stack.version))
    return rows


def _events_rows(cluster) -> List[tuple]:
    return [(e.seq, e.sim_time, e.wall_time, e.source, e.kind, e.detail)
            for e in cluster.events]


def _queries_rows(cluster) -> List[tuple]:
    """One row per workload-manager query, including live ones.

    Sourced from the manager's records rather than the tracer ring or
    the registry, so queued/running/cancelled queries are visible while
    in flight and the table survives ``metrics().reset()``.
    """
    import time as _time
    wm = getattr(cluster, "workload", None)
    if wm is None:
        return []
    now_wall = _time.perf_counter()
    now_sim = cluster.sim_clock.seconds
    rows = []
    for rec in wm.query_records():
        live = rec.state in ("queued", "running")
        end_wall = now_wall if live else rec.finish_wall
        end_sim = now_sim if live else rec.finish_sim
        rows.append((
            rec.query_id, rec.session_id, rec.state, rec.root_label,
            rec.statement,
            (end_wall - rec.submit_wall) * 1e3,
            (end_sim - rec.submit_sim) * 1e3,
            rec.wait_sim * 1e3, rec.rounds, rec.retries,
        ))
    return rows


def _faults_rows(cluster) -> List[tuple]:
    """The installed chaos controller's plan, with per-fault outcomes."""
    chaos = getattr(cluster, "chaos", None)
    if chaos is None:
        return []
    fired = {f.spec.key(): f for f in chaos.fired}
    rows = []
    for i, spec in enumerate(chaos.plan):
        hit = fired.get(spec.key())
        rows.append((
            i, spec.at, spec.kind, spec.target, spec.param, spec.count,
            "fired" if hit is not None else "pending",
            hit.detail if hit is not None else "",
            int(hit.invariant_ok) if hit is not None else 1,
        ))
    return rows


def _sessions_rows(cluster) -> List[tuple]:
    wm = getattr(cluster, "workload", None)
    if wm is None:
        return []
    states = ("queued", "running", "finished", "cancelled", "failed")
    per: Dict[int, Dict[str, int]] = {
        sid: dict.fromkeys(states, 0) for sid in wm.sessions()
    }
    for rec in wm.query_records():
        entry = per.setdefault(rec.session_id, dict.fromkeys(states, 0))
        entry[rec.state] = entry.get(rec.state, 0) + 1
    return [
        (sid, sum(entry.values()),
         entry["queued"], entry["running"], entry["finished"],
         entry["cancelled"], entry["failed"])
        for sid, entry in sorted(per.items())
    ]


def _metrics_history_rows(cluster) -> List[tuple]:
    """The flight recorder's sampled time series (one row per series
    value per retained sample)."""
    monitor = getattr(cluster, "monitor", None)
    if monitor is None:
        return []
    return monitor.history.rows()


def _alerts_rows(cluster) -> List[tuple]:
    """Every alert the health monitor ever raised (``cleared_sim`` is
    -1 while still firing)."""
    monitor = getattr(cluster, "monitor", None)
    if monitor is None:
        return []
    return monitor.health.rows()


def _query_log_rows(cluster) -> List[tuple]:
    """The persistent per-query flight record; unlike ``vh$queries``
    this holds only terminal queries and richer execution facts."""
    monitor = getattr(cluster, "monitor", None)
    if monitor is None:
        return []
    return monitor.query_log.rows()


def _tenants_rows(cluster) -> List[tuple]:
    """Per-tenant admission state: weights, quotas, WFQ pass values and
    lifetime admitted/finished counts. Wall-clock free, so twin
    deterministic runs show identical contents."""
    workload = getattr(cluster, "workload", None)
    tenants = getattr(workload, "tenants", None)
    if not tenants:
        return []
    return [
        (t.name, t.weight, t.priority, t.max_concurrent, t.memory_limit,
         len(t.queue), t.running, t.admitted, t.finished, t.pass_value)
        for t in tenants.values()
    ]


def _connections_rows(cluster) -> List[tuple]:
    """The server frontend's client connections (empty until
    ``cluster.serve()`` has been called)."""
    frontend = getattr(cluster, "frontend", None)
    if frontend is None:
        return []
    return [
        (c.conn_id, c.tenant, c.state, c.queries, len(c.inflight),
         len(c.prepared), c.opened_sim)
        for c in frontend.connections.values()
    ]


def _operator_stats_rows(cluster) -> List[tuple]:
    """The continuous profiler's cumulative per-operator-kind stats.

    Columns through ``sim_cost_s`` are deterministic (bit-identical
    across same-seed runs); ``wall_s`` / ``rows_per_s`` are real
    wall-clock measurements.
    """
    profiler = getattr(cluster, "profiler", None)
    if profiler is None:
        return []
    return profiler.rows()


def _hot_paths_rows(cluster) -> List[tuple]:
    """Top-k (operator, kernel) pairs ranked by deterministic sim cost."""
    profiler = getattr(cluster, "profiler", None)
    if profiler is None:
        return []
    return profiler.hot_paths()


def _plan_feedback_rows(cluster) -> List[tuple]:
    """The cardinality feedback store: what the rewriter remembers."""
    store = getattr(cluster, "feedback", None)
    if store is None:
        return []
    return [(e.signature, e.estimated, e.observed, e.hits, e.updated)
            for e in store.snapshot()]


def _schema(name: str, columns: List[Tuple[str, ColumnType]]) -> TableSchema:
    return TableSchema(name=name,
                       columns=[Column(n, t) for n, t in columns])


#: (name, columns, snapshot builder) for every system table
SYSTEM_TABLES = (
    ("vh$metrics",
     [("metric", STRING), ("kind", STRING), ("labels", STRING),
      ("value", FLOAT64)],
     _metrics_rows),
    ("vh$blocks",
     [("table", STRING), ("partition", INT64), ("column", STRING),
      ("path", STRING), ("row_start", INT64), ("n_rows", INT64),
      ("bytes", INT64), ("scheme", STRING)],
     _blocks_rows),
    ("vh$partitions",
     [("table", STRING), ("partition", INT64), ("responsible", STRING),
      ("replicas", INT64), ("rows", INT64), ("pdt_entries", INT64),
      ("bytes", INT64), ("local", INT64)],
     _partitions_rows),
    ("vh$compression",
     [("table", STRING), ("column", STRING), ("scheme", STRING),
      ("blocks", INT64), ("raw_bytes", INT64), ("encoded_bytes", INT64),
      ("ratio", FLOAT64)],
     _compression_rows),
    ("vh$pdt",
     [("table", STRING), ("partition", INT64), ("read_entries", INT64),
      ("write_entries", INT64), ("total_entries", INT64),
      ("version", INT64)],
     _pdt_rows),
    ("vh$events",
     [("seq", INT64), ("sim_time", FLOAT64), ("wall_time", FLOAT64),
      ("source", STRING), ("kind", STRING), ("detail", STRING)],
     _events_rows),
    ("vh$queries",
     [("query", INT64), ("session", INT64), ("state", STRING),
      ("root", STRING), ("statement", STRING), ("wall_ms", FLOAT64),
      ("sim_ms", FLOAT64), ("wait_ms", FLOAT64), ("rounds", INT64),
      ("retries", INT64)],
     _queries_rows),
    ("vh$faults",
     [("idx", INT64), ("at", FLOAT64), ("kind", STRING),
      ("target", STRING), ("param", FLOAT64), ("count", INT64),
      ("status", STRING), ("detail", STRING), ("invariant_ok", INT64)],
     _faults_rows),
    ("vh$sessions",
     [("session", INT64), ("queries", INT64), ("queued", INT64),
      ("running", INT64), ("finished", INT64), ("cancelled", INT64),
      ("failed", INT64)],
     _sessions_rows),
    ("vh$plan_feedback",
     [("signature", STRING), ("estimated", FLOAT64),
      ("observed", FLOAT64), ("hits", INT64), ("updated", FLOAT64)],
     _plan_feedback_rows),
    ("vh$metrics_history",
     [("sample", INT64), ("sim_time", FLOAT64), ("metric", STRING),
      ("labels", STRING), ("value", FLOAT64)],
     _metrics_history_rows),
    ("vh$alerts",
     [("seq", INT64), ("rule", STRING), ("metric", STRING),
      ("state", STRING), ("value", FLOAT64), ("threshold", FLOAT64),
      ("raised_sim", FLOAT64), ("cleared_sim", FLOAT64),
      ("peak", FLOAT64)],
     _alerts_rows),
    ("vh$query_log",
     [("query", INT64), ("session", INT64), ("state", STRING),
      ("fingerprint", STRING), ("plan", STRING), ("statement", STRING),
      ("wall_ms", FLOAT64), ("sim_ms", FLOAT64), ("wait_ms", FLOAT64),
      ("rows", INT64), ("peak_memory", INT64), ("wire_bytes", INT64),
      ("retries", INT64), ("replans", INT64), ("max_qerror", FLOAT64),
      ("dominant", STRING), ("dominant_share", FLOAT64),
      ("tenant", STRING)],
     _query_log_rows),
    ("vh$tenants",
     [("tenant", STRING), ("weight", INT64), ("priority", INT64),
      ("quota", INT64), ("memory_quota", INT64), ("queued", INT64),
      ("running", INT64), ("admitted", INT64), ("finished", INT64),
      ("wfq_pass", INT64)],
     _tenants_rows),
    ("vh$connections",
     [("conn", INT64), ("tenant", STRING), ("state", STRING),
      ("queries", INT64), ("inflight", INT64), ("prepared", INT64),
      ("opened_sim", FLOAT64)],
     _connections_rows),
    ("vh$operator_stats",
     [("operator", STRING), ("queries", INT64), ("instances", INT64),
      ("rows_in", INT64), ("rows_out", INT64), ("batches", INT64),
      ("net_bytes", INT64), ("sim_cost_s", FLOAT64),
      ("wall_s", FLOAT64), ("rows_per_s", FLOAT64)],
     _operator_stats_rows),
    ("vh$hot_paths",
     [("rank", INT64), ("operator", STRING), ("kernel", STRING),
      ("calls", INT64), ("rows", INT64), ("bytes", INT64),
      ("sim_cost_s", FLOAT64), ("wall_s", FLOAT64), ("share", FLOAT64)],
     _hot_paths_rows),
)


class SystemCatalog:
    """The cluster's virtual-table namespace (``vh$*``)."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._tables: Dict[str, VirtualTable] = {}
        for name, columns, builder in SYSTEM_TABLES:
            self._tables[name] = VirtualTable(
                cluster, _schema(name, columns), builder
            )

    def lookup(self, name: str) -> Optional[VirtualTable]:
        return self._tables.get(name)

    def names(self) -> List[str]:
        return sorted(self._tables)


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------

def explain_analyze(cluster, plan, flags=None, trans=None,
                    exchange_mode: str = "streaming",
                    thread_to_node: bool = True):
    """Run a logical plan and annotate its physical plan with actuals.

    Returns ``(text, result)``: the annotated plan text and the
    underlying :class:`~repro.mpp.executor.QueryResult` (whose
    ``plan_text`` is replaced by the annotated rendering). The registry
    is snapshotted around the execution so MinMax, locality and exchange
    actuals are exactly this query's contribution.
    """
    from repro.mpp.rewriter import ParallelRewriter
    from repro.obs import NULL_TRACER

    tracer = getattr(cluster, "tracer", None) or NULL_TRACER
    before = cluster.registry.snapshot()
    with tracer.span("query", explain="analyze"):
        with tracer.span("rewrite"):
            qplan = ParallelRewriter(cluster, flags).plan(plan)
        result = cluster.executor.execute(
            qplan, trans=trans, exchange_mode=exchange_mode,
            thread_to_node=thread_to_node,
        )
        with tracer.span("commit", implicit=trans is None):
            pass
    after = cluster.registry.snapshot()
    # a mid-query re-plan means the batches came from a different tree
    # than the one planned up front: render what actually ran
    phys = getattr(result, "_final_root", qplan.root)
    annotations = getattr(result, "_annotations", qplan.annotations)
    text = annotate_plan(phys, result, before, after,
                         annotations=annotations)
    result.plan_text = text
    return text, result


def _flatten_profiles(profiles) -> Dict[str, deque]:
    by_label: Dict[str, deque] = {}

    def walk(prof):
        by_label.setdefault(prof.label, deque()).append(prof)
        for child in prof.children:
            walk(child)

    for prof in profiles:
        walk(prof)
    return by_label


def _series_delta(before, after, name) -> Dict[tuple, float]:
    """Per-label-key increase of one counter family between snapshots."""
    base = before.get(name, {})
    return {key: value - base.get(key, 0)
            for key, value in after.get(name, {}).items()}


def annotate_plan(phys, result, before, after, annotations=None) -> str:
    """Render a physical plan with per-operator actuals.

    Per operator: ``rows`` (tuples produced, summed over streams) and
    ``stream_time`` (slowest stream's wall time -- the per-round critical
    path the simulated clock charges). With planner ``annotations``, each
    annotated operator also shows its estimated rows (``est``, tagged
    ``(fb)`` when feedback-backed) and the q-error
    ``max(actual/est, est/actual)`` -- misestimates are visible without
    reading the feedback store. Exchanges add total wire traffic plus one
    line per node->node link; scans add MinMax skipped/total blocks for
    their table. The footer reconciles totals against the registry
    snapshot diff.
    """
    profiles = _flatten_profiles(result.profiles)
    exchange_stats: Dict[str, deque] = {}
    for stats in result.exchanges:
        exchange_stats.setdefault(stats["label"], deque()).append(stats)
    scanned_delta = _series_delta(before, after, "minmax_blocks_scanned_total")
    skipped_delta = _series_delta(before, after, "minmax_blocks_skipped_total")

    lines: List[str] = []

    def pop_profile(label: str):
        queue = profiles.get(label)
        if queue is None and "(" in label:
            # plan qualifiers like Aggr(final)[b] profile as plain Aggr[b];
            # pre-order emit matches pre-order flattening, so popleft pairs
            # each qualified node with its own profile.
            head, _, rest = label.partition("(")
            _, _, tail = rest.partition(")")
            queue = profiles.get(head + tail)
        return queue.popleft() if queue else None

    def emit(node, indent: int) -> None:
        pad = "  " * indent
        dist = node.distribution
        head = (f"{pad}{node.describe()}  <{dist.kind}"
                + (f" on {','.join(dist.keys)}" if dist.keys else "") + ">")
        is_exchange = isinstance(node, P.DXchg)
        prof = (pop_profile(node.describe() + ".recv") if is_exchange
                else pop_profile(node.describe()))
        actuals: List[str] = []
        if prof is not None:
            actuals.append(f"rows={prof.tuples_out}")
            stream_time = (max(prof.stream_times) if prof.stream_times
                           else prof.cum_time)
            actuals.append(f"stream_time={stream_time * 1e3:.3f}ms")
        ann = annotations.get(node) if annotations else None
        if ann is not None:
            fb = "(fb)" if ann.source == "feedback" else ""
            actuals.append(f"est={ann.rows:.0f}{fb}")
            if prof is not None:
                actual = max(float(prof.tuples_out), 1.0)
                est = max(float(ann.rows), 1.0)
                actuals.append(f"q={max(actual / est, est / actual):.1f}")
        stats = None
        if is_exchange:
            queue = exchange_stats.get(node.describe())
            stats = queue.popleft() if queue else None
            if stats is not None:
                actuals.append(f"wire={int(stats['bytes'])}B"
                               f"/{int(stats['messages'])}msgs")
        if isinstance(node, P.PScan):
            scanned = scanned_delta.get((node.table,), 0)
            skipped = skipped_delta.get((node.table,), 0)
            if scanned or skipped:
                total = int(scanned + skipped)
                actuals.append(f"minmax={int(skipped)}/{total} "
                               "blocks skipped")
        lines.append(head + (f"  [{' '.join(actuals)}]" if actuals else ""))
        if stats is not None:
            for link in stats.get("links", ()):
                if not link["bytes"]:
                    continue
                mode = "local" if link["local"] else "remote"
                lines.append(
                    f"{pad}  . link {link['src']}->{link['dst']}: "
                    f"{int(link['bytes'])}B {int(link['messages'])}msgs "
                    f"{int(link['tuples'])}t ({mode})"
                )
        for child in node.children:
            emit(child, indent + 1)

    emit(phys, 0)

    # footer: query-level actuals reconciled with the registry diff
    reads = _series_delta(before, after, "hdfs_read_bytes_total")
    local = sum(v for k, v in reads.items() if k[1] == "short_circuit")
    remote = sum(v for k, v in reads.items() if k[1] == "remote")
    total_read = local + remote
    fraction = 1.0 if total_read == 0 else local / total_read
    lines.append("-- actuals "
                 "------------------------------------------------------")
    lines.append(f"-- elapsed={result.elapsed * 1e3:.3f}ms "
                 f"simulated={result.simulated_parallel_seconds * 1e3:.3f}ms")
    lines.append(f"-- network: {result.network_bytes} bytes in "
                 f"{result.network_messages} messages; "
                 f"read: {result.bytes_read} bytes")
    lines.append(f"-- scan locality: {fraction:.1%} short-circuit "
                 f"({int(local)} local / {int(remote)} remote bytes)")
    tables = sorted(set(scanned_delta) | set(skipped_delta))
    for key in tables:
        scanned = scanned_delta.get(key, 0)
        skipped = skipped_delta.get(key, 0)
        if scanned or skipped:
            lines.append(f"-- minmax[{key[0]}]: scanned={int(scanned)} "
                         f"skipped={int(skipped)} blocks")
    if result.peak_node_memory:
        peaks = " ".join(f"{n}={b}" for n, b in
                         sorted(result.peak_node_memory.items()))
        lines.append(f"-- peak memory bytes: {peaks}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Catalog lookup helper shared by binder/rewriter/executor
# ---------------------------------------------------------------------------

def resolve_table(cluster, name: str):
    """Resolve ``name`` against base tables, then the system catalog."""
    stored = cluster.tables.get(name)
    if stored is not None:
        return stored
    catalog = getattr(cluster, "catalog", None)
    if catalog is not None:
        virtual = catalog.lookup(name)
        if virtual is not None:
            return virtual
    raise StorageError(f"no such table {name}")
