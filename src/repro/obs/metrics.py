"""Process-wide metrics registry: counters, gauges, histograms.

Every simulator subsystem (HDFS, MPI fabric, buffer pools, exchanges,
transactions, YARN, the executor) charges its accounting through one
:class:`MetricsRegistry` instead of keeping ad-hoc attribute counters.
Series are label-keyed (``hdfs_read_bytes_total{node="node1",
mode="short_circuit"}``), snapshot-able, resettable, and renderable in the
Prometheus text exposition format -- so a benchmark can diff two
snapshots, a test can golden-compare the exposition, and every future
performance PR reports through the same names.

The legacy per-object counters (``DataNode.bytes_read_local``,
``BufferPool.hits``, ``TransactionManager.commits``...) remain available
as *views* over registry series, so existing callers and tests keep
working while the registry is the single source of truth.
"""

from __future__ import annotations

import bisect
import warnings
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ReproError

LabelKey = Tuple[str, ...]

#: default histogram buckets (bytes/seconds both fit a wide geometric grid)
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


def _format_value(v: float) -> str:
    """Prometheus renders integers without a trailing ``.0``."""
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _escape_label_value(v: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (quotes stay literal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                          total: float, q: float) -> float:
    """Interpolated q-quantile from per-bucket (non-cumulative) counts.

    Prometheus ``histogram_quantile`` semantics: linear interpolation
    inside the bucket holding the target rank, observations above the
    highest finite bound collapse to that bound. ``counts[i]`` holds the
    observations with ``bounds[i-1] < value <= bounds[i]``.
    """
    if total <= 0 or not bounds:
        return 0.0
    rank = min(max(q, 0.0), 1.0) * total
    cum = 0.0
    for i, n in enumerate(counts):
        if n <= 0:
            continue
        cum += n
        if cum >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            frac = (rank - (cum - n)) / n
            return lower + (bounds[i] - lower) * frac
    # the rank fell in the +Inf bucket: the best bound we can report
    return float(bounds[-1])


class MetricFamily:
    """One named metric with a fixed label schema and many series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

    # -- label plumbing ------------------------------------------------------

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if set(labels) != set(self.label_names):
            raise ReproError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def labelset(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def _render_labels(self, key: LabelKey,
                       extra: Sequence[Tuple[str, str]] = ()) -> str:
        pairs = [(n, v) for n, v in zip(self.label_names, key)]
        pairs.extend(extra)
        if not pairs:
            return ""
        body = ",".join(
            f'{n}="{_escape_label_value(str(v))}"' for n, v in pairs)
        return "{" + body + "}"

    # -- interface every family implements -----------------------------------

    def clear(self) -> None:
        raise NotImplementedError

    def snapshot(self) -> Dict[LabelKey, object]:
        raise NotImplementedError

    def render(self) -> List[str]:
        raise NotImplementedError


class Counter(MetricFamily):
    """Monotonically increasing (resettable) label-keyed counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> float:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        value = self._series.get(key, 0) + amount
        self._series[key] = value
        return value

    def get(self, **labels) -> float:
        return self._series.get(self._key(labels), 0)

    def set(self, value: float, **labels) -> None:
        """Deprecated: counters are monotonic. Use :meth:`inc` (or
        :meth:`clear`/``registry.reset`` to zero); legacy attribute-style
        views assign through :meth:`_assign`."""
        warnings.warn(
            f"Counter.set ({self.name}) is deprecated: counters are "
            "monotonic -- use inc(), or clear()/reset() to zero",
            DeprecationWarning, stacklevel=2)
        self._assign(value, **labels)

    def _assign(self, value: float, **labels) -> None:
        """Non-monotonic assignment for the legacy attribute views
        (``pool.hits = 0``); not part of the Prometheus counter model."""
        self._series[self._key(labels)] = value

    def total(self) -> float:
        return sum(self._series.values())

    def clear(self) -> None:
        self._series.clear()

    def remove(self, **labels) -> None:
        self._series.pop(self._key(labels), None)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def snapshot(self) -> Dict[LabelKey, object]:
        return dict(self._series)

    def render(self) -> List[str]:
        return [
            f"{self.name}{self._render_labels(key)} {_format_value(v)}"
            for key, v in sorted(self._series.items())
        ]


class Gauge(MetricFamily):
    """Point-in-time value; ``sticky`` gauges describe live state (bytes
    stored, running containers) and survive :meth:`MetricsRegistry.reset`,
    non-sticky ones are statistics (high-water marks) and do not."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (), sticky: bool = False):
        super().__init__(name, help, labels)
        self.sticky = sticky
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels) -> None:
        """Record a high-water mark: keep the largest value ever set."""
        key = self._key(labels)
        if value > self._series.get(key, float("-inf")):
            self._series[key] = value

    def get(self, **labels) -> float:
        return self._series.get(self._key(labels), 0)

    def total(self) -> float:
        return sum(self._series.values())

    def clear(self) -> None:
        self._series.clear()

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def snapshot(self) -> Dict[LabelKey, object]:
        return dict(self._series)

    def render(self) -> List[str]:
        return [
            f"{self.name}{self._render_labels(key)} {_format_value(v)}"
            for key, v in sorted(self._series.items())
        ]


class _HistState:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0


class Histogram(MetricFamily):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labels)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._series: Dict[LabelKey, _HistState] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistState(len(self.buckets))
        i = bisect.bisect_left(self.buckets, value)
        if i < len(self.buckets):
            state.bucket_counts[i] += 1
        state.count += 1
        state.sum += value

    def get(self, **labels) -> Dict[str, object]:
        state = self._series.get(self._key(labels))
        if state is None:
            return {"count": 0, "sum": 0.0,
                    "buckets": {le: 0 for le in self.buckets}}
        cum, out = 0, {}
        for le, n in zip(self.buckets, state.bucket_counts):
            cum += n
            out[le] = cum
        return {"count": state.count, "sum": state.sum, "buckets": out}

    def quantile(self, q: float, **labels) -> float:
        """Interpolated ``q``-quantile (0..1) from the bucket counts.

        With labels, reads that one series; called bare on a labelled
        family it aggregates the buckets of every series. Returns 0.0
        for an empty histogram.
        """
        if labels or not self.label_names:
            state = self._series.get(self._key(labels))
            if state is None or state.count == 0:
                return 0.0
            return quantile_from_buckets(
                self.buckets, state.bucket_counts, state.count, q)
        counts = [0] * len(self.buckets)
        total = 0
        for state in self._series.values():
            total += state.count
            for i, n in enumerate(state.bucket_counts):
                counts[i] += n
        return quantile_from_buckets(self.buckets, counts, total, q)

    def clear(self) -> None:
        self._series.clear()

    def snapshot(self) -> Dict[LabelKey, object]:
        return {key: self.get(**self.labelset(key)) for key in self._series}

    def render(self) -> List[str]:
        lines = []
        for key in sorted(self._series):
            data = self.get(**self.labelset(key))
            for le, n in data["buckets"].items():
                labels = self._render_labels(key, [("le", _format_value(le))])
                lines.append(f"{self.name}_bucket{labels} {n}")
            labels = self._render_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{labels} {data['count']}")
            plain = self._render_labels(key)
            lines.append(
                f"{self.name}_sum{plain} {_format_value(data['sum'])}"
            )
            lines.append(f"{self.name}_count{plain} {data['count']}")
        return lines


class MetricsRegistry:
    """All metric families of one deployment.

    A :class:`~repro.cluster.VectorHCluster` owns one registry shared by
    every subsystem it wires together; standalone components (a bare
    ``HdfsCluster`` in a unit test) default to a private registry so
    instances never bleed counts into each other.
    """

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}

    # -- registration --------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = cls(name, help, labels, **kwargs)
            self._families[name] = family
            return family
        if not isinstance(family, cls):
            raise ReproError(
                f"metric {name} already registered as {family.kind}"
            )
        if family.label_names != tuple(labels):
            raise ReproError(
                f"metric {name} registered with labels "
                f"{family.label_names}, requested {tuple(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = (),
              sticky: bool = False) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels, sticky=sticky)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    # -- snapshots & reset ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[LabelKey, object]]:
        """An isolated deep copy of every series' current value."""
        return {name: family.snapshot()
                for name, family in sorted(self._families.items())}

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Convenience: one series' scalar value (0 when absent)."""
        family = self._families.get(name)
        if family is None:
            return default
        return family.get(**labels)

    def reset(self, prefix: str = "") -> None:
        """Drop the series of counters, histograms and non-sticky gauges
        whose family name starts with ``prefix``; families stay
        registered. Sticky gauges describe live state and survive."""
        for name, family in self._families.items():
            if not name.startswith(prefix):
                continue
            if isinstance(family, Gauge) and family.sticky:
                continue
            family.clear()

    # -- exposition ----------------------------------------------------------

    def render(self, prefixes: Iterable[str] = ("",)) -> str:
        """Prometheus text exposition of every matching family."""
        lines: List[str] = []
        for family in self.families():
            if not any(family.name.startswith(p) for p in prefixes):
                continue
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")
