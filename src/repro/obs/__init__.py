"""repro.obs: the unified observability layer.

* :class:`MetricsRegistry` -- label-keyed counters/gauges/histograms with
  ``snapshot()``, ``reset()`` and Prometheus-style ``render()``; every
  subsystem of a :class:`~repro.cluster.VectorHCluster` charges its
  accounting here.
* :class:`Tracer` / :class:`Span` -- nested query-lifecycle spans
  recording wall time *and* the simulator's charged time, exportable as a
  text tree or Chrome-trace JSON.
* :class:`ClusterEventLog` / :class:`Event` -- append-only log of
  irregular cluster facts (failures, re-replication, preemption, 2PC
  outcomes, DDL), queryable through the ``vh$events`` system table.
* :class:`ContinuousProfiler` -- always-on aggregation of per-operator /
  per-kernel execution profiles (``vh$operator_stats``, ``vh$hot_paths``)
  with flamegraph (:func:`folded_stacks`) and Chrome-trace
  (:func:`profile_chrome_trace`) exports.

``repro.obs.introspect`` (system tables + EXPLAIN ANALYZE) depends on the
storage/mpp layers and is therefore *not* imported here; import it
directly.
"""

from repro.obs.events import ClusterEventLog, Event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.monitor import (
    Alert,
    AlertRule,
    FlightRecorder,
    HealthMonitor,
    MetricsHistory,
    QueryLog,
    QueryLogRecord,
    default_rules,
    sql_fingerprint,
)
from repro.obs.profiler import (
    ContinuousProfiler,
    dominant_operator,
    folded_stacks,
    operator_kind,
    profile_chrome_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    SimClock,
    Span,
    Tracer,
    span_from_profile,
)

__all__ = [
    "Alert",
    "AlertRule",
    "ClusterEventLog",
    "ContinuousProfiler",
    "Counter",
    "Event",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricFamily",
    "MetricsHistory",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueryLog",
    "QueryLogRecord",
    "SimClock",
    "Span",
    "Tracer",
    "default_rules",
    "dominant_operator",
    "folded_stacks",
    "operator_kind",
    "profile_chrome_trace",
    "quantile_from_buckets",
    "span_from_profile",
    "sql_fingerprint",
]
