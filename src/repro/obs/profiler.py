"""Continuous operator profiler with kernel-level hot-path attribution.

The engine side lives in :mod:`repro.engine.profile`: every operator's
:class:`ProfileNode` carries batches and named :class:`KernelStat` entries
recorded by the ambient ``kernel()`` context manager. This module is the
aggregation and export layer on top of those trees:

* :class:`ContinuousProfiler` folds every finished query's profile into
  cumulative per-operator-kind statistics (rows in/out, batches, wall
  self seconds, deterministic sim cost, per-kernel accounting) and
  charges them into the MetricsRegistry. ``vh$operator_stats`` and
  ``vh$hot_paths`` render straight from it.
* :func:`folded_stacks` / :func:`profile_chrome_trace` export one
  query's profile as a flamegraph folded-stack file and a Chrome-trace
  JSON (``chrome://tracing`` / Perfetto).
* :func:`dominant_operator` names the operator kind that dominates a
  query -- the ``vh$query_log`` culprit column.

Wall seconds are real (nondeterministic) measurements; everything else
-- rows, batches, calls, bytes, and the *sim cost* derived from them
with the BatchCostModel constants -- is bit-identical across same-seed
runs, which is what the trajectory gate and the twin-run tests rely on.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.profile import KernelStat, ProfileNode

#: deterministic cost constants, mirroring the scheduler's BatchCostModel
#: (``repro.engine.exchange``): one "pull" per batch/kernel call plus a
#: per-tuple term. Sim cost is the deterministic proxy for work.
SIM_PER_CALL = 2e-6
SIM_PER_ROW = 1e-7

_KIND_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)")


def operator_kind(label: str) -> str:
    """Collapse an operator instance label to its kind.

    ``MScan[lineitem]`` -> ``MScan``; exchange halves keep their side:
    ``DXchg(hash)[l_okey].send`` -> ``DXchg.send``.
    """
    match = _KIND_RE.match(label)
    kind = match.group(1) if match else label or "?"
    for side in (".send", ".recv"):
        if label.endswith(side):
            return kind + side
    return kind


def walk(node: ProfileNode) -> Iterator[ProfileNode]:
    yield node
    for child in node.children:
        yield from walk(child)


def node_sim_cost(node: ProfileNode) -> float:
    """Deterministic self cost of one operator node."""
    return SIM_PER_CALL * node.batches + SIM_PER_ROW * node.tuples_out


def kernel_sim_cost(stat: KernelStat) -> float:
    return SIM_PER_CALL * stat.calls + SIM_PER_ROW * stat.rows


@dataclass
class OperatorAgg:
    """Cumulative stats for one operator kind across observed queries."""

    queries: int = 0
    instances: int = 0
    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    net_bytes: int = 0
    #: real self wall seconds (cum minus children), nondeterministic
    wall_seconds: float = 0.0
    #: deterministic cost derived from batches/rows
    sim_cost: float = 0.0
    kernels: Dict[str, KernelStat] = field(default_factory=dict)

    def kernel_stat(self, name: str) -> KernelStat:
        stat = self.kernels.get(name)
        if stat is None:
            stat = self.kernels[name] = KernelStat()
        return stat


class ContinuousProfiler:
    """Always-on aggregation of query profiles into per-kind stats."""

    def __init__(self, registry=None, top_k: int = 20):
        self.top_k = top_k
        self.stats: Dict[str, OperatorAgg] = {}
        self.queries_observed = 0
        self._registry = registry
        if registry is not None:
            self._rows = registry.counter(
                "operator_rows_total",
                "Tuples through each operator kind",
                labels=("operator", "direction"))
            self._batches = registry.counter(
                "operator_batches_total",
                "Vectors yielded by each operator kind", labels=("operator",))
            self._sim = registry.counter(
                "operator_sim_cost_seconds_total",
                "Deterministic sim cost per operator kind",
                labels=("operator",))
            self._wall = registry.counter(
                "operator_wall_seconds_total",
                "Self wall seconds per operator kind (nondeterministic)",
                labels=("operator",))
            self._kcalls = registry.counter(
                "kernel_calls_total", "Kernel invocations",
                labels=("operator", "kernel"))
            self._krows = registry.counter(
                "kernel_rows_total", "Rows through each kernel",
                labels=("operator", "kernel"))
            self._kbytes = registry.counter(
                "kernel_bytes_total", "Bytes through each kernel",
                labels=("operator", "kernel"))
            self._kwall = registry.counter(
                "kernel_wall_seconds_total",
                "Kernel self wall seconds (nondeterministic)",
                labels=("operator", "kernel"))

    # ------------------------------------------------------------ ingest

    def observe_query(self, result) -> None:
        """Fold one finished query's profile trees into the totals."""
        profiles = getattr(result, "profiles", None) or ()
        if not profiles:
            return
        self.queries_observed += 1
        seen_kinds = set()
        for root in profiles:
            for node in walk(root):
                kind = operator_kind(node.label)
                agg = self.stats.get(kind)
                if agg is None:
                    agg = self.stats[kind] = OperatorAgg()
                if kind not in seen_kinds:
                    seen_kinds.add(kind)
                    agg.queries += 1
                n_streams = max(1, len(node.stream_times))
                agg.instances += n_streams
                agg.rows_in += node.tuples_in
                agg.rows_out += node.tuples_out
                agg.batches += node.batches
                agg.net_bytes += node.net_bytes
                wall = node.time
                sim = node_sim_cost(node)
                agg.wall_seconds += wall
                agg.sim_cost += sim
                for name, stat in node.kernels.items():
                    agg.kernel_stat(name).merge(stat)
                self._charge(kind, node, wall, sim)

    def _charge(self, kind: str, node: ProfileNode,
                wall: float, sim: float) -> None:
        if self._registry is None:
            return
        if node.tuples_in:
            self._rows.inc(node.tuples_in, operator=kind, direction="in")
        if node.tuples_out:
            self._rows.inc(node.tuples_out, operator=kind, direction="out")
        if node.batches:
            self._batches.inc(node.batches, operator=kind)
        if sim:
            self._sim.inc(sim, operator=kind)
        if wall:
            self._wall.inc(wall, operator=kind)
        for name, stat in node.kernels.items():
            self._kcalls.inc(stat.calls, operator=kind, kernel=name)
            if stat.rows:
                self._krows.inc(stat.rows, operator=kind, kernel=name)
            if stat.bytes:
                self._kbytes.inc(stat.bytes, operator=kind, kernel=name)
            if stat.seconds:
                self._kwall.inc(stat.seconds, operator=kind, kernel=name)

    def reset(self) -> None:
        self.stats.clear()
        self.queries_observed = 0

    # ----------------------------------------------------------- export

    def rows(self) -> List[tuple]:
        """``vh$operator_stats`` rows, deterministic columns first."""
        out = []
        for kind in sorted(self.stats):
            agg = self.stats[kind]
            rows_per_s = (agg.rows_out / agg.wall_seconds
                          if agg.wall_seconds > 0 else 0.0)
            out.append((
                kind, agg.queries, agg.instances, agg.rows_in, agg.rows_out,
                agg.batches, agg.net_bytes, agg.sim_cost,
                agg.wall_seconds, rows_per_s,
            ))
        return out

    def hot_paths(self, k: Optional[int] = None) -> List[tuple]:
        """Top-k (operator, kernel) pairs ranked by deterministic sim cost.

        An ``(self)`` pseudo-kernel carries each operator's residual
        (time not attributed to any named kernel), so the view always
        covers 100% of the work.
        """
        entries: List[tuple] = []
        for kind in sorted(self.stats):
            agg = self.stats[kind]
            named_sim = 0.0
            named_wall = 0.0
            for name in sorted(agg.kernels):
                stat = agg.kernels[name]
                sim = kernel_sim_cost(stat)
                named_sim += sim
                named_wall += stat.seconds
                entries.append((kind, name, stat.calls, stat.rows,
                                stat.bytes, sim, stat.seconds))
            self_sim = max(0.0, agg.sim_cost - named_sim)
            self_wall = max(0.0, agg.wall_seconds - named_wall)
            entries.append((kind, "(self)", agg.batches, agg.rows_out,
                            0, self_sim, self_wall))
        total_sim = sum(e[5] for e in entries) or 1.0
        entries.sort(key=lambda e: (-e[5], e[0], e[1]))
        if k is None:
            k = self.top_k
        ranked = []
        for rank, (op, name, calls, rows, nbytes, sim, wall) in enumerate(
                entries[:k], start=1):
            ranked.append((rank, op, name, calls, rows, nbytes,
                           sim, wall, sim / total_sim))
        return ranked

    def report(self, k: Optional[int] = None) -> str:
        """Human-readable top-k hot paths (the ``slow_report`` companion)."""
        lines = [f"{'#':>3} {'operator':<16} {'kernel':<20} "
                 f"{'calls':>10} {'rows':>12} {'sim s':>10} "
                 f"{'wall s':>10} {'share':>7}"]
        for (rank, op, name, calls, rows, _nbytes, sim, wall,
                share) in self.hot_paths(k):
            lines.append(f"{rank:>3} {op:<16} {name:<20} {calls:>10,} "
                         f"{rows:>12,} {sim:>10.4f} {wall:>10.4f} "
                         f"{100 * share:>6.2f}%")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-query exports: dominant operator, folded stacks, Chrome trace
# ---------------------------------------------------------------------------

def dominant_operator(profiles: Sequence[ProfileNode]) -> Tuple[str, float]:
    """(kind, share) of the operator kind dominating a query's work.

    Measured on deterministic sim cost, so the query-log culprit column
    is bit-identical across same-seed runs.
    """
    per_kind: Dict[str, float] = {}
    total = 0.0
    for root in profiles:
        for node in walk(root):
            sim = node_sim_cost(node)
            kind = operator_kind(node.label)
            per_kind[kind] = per_kind.get(kind, 0.0) + sim
            total += sim
    if not per_kind or total <= 0:
        return "", 0.0
    kind, sim = min(per_kind.items(), key=lambda kv: (-kv[1], kv[0]))
    return kind, sim / total


def _frame(label: str) -> str:
    """Sanitize a label into a folded-stack frame token."""
    return re.sub(r"\s+", "_", label).replace(";", ",")


def folded_stacks(profiles: Sequence[ProfileNode]) -> str:
    """Render profile trees as folded stacks (``stack count`` per line).

    Counts are integer microseconds of *self* wall time; named kernels
    hang off their operator as ``kernel:<name>`` leaf frames. Feed the
    output to any flamegraph renderer (e.g. speedscope, inferno).
    """
    lines: List[str] = []

    def emit(node: ProfileNode, prefix: str) -> None:
        path = (prefix + ";" if prefix else "") + _frame(node.label)
        kernel_s = 0.0
        for name in sorted(node.kernels):
            stat = node.kernels[name]
            kernel_s += stat.seconds
            usec = int(round(stat.seconds * 1e6))
            lines.append(f"{path};kernel:{_frame(name)} {max(1, usec)}")
        self_usec = int(round(max(0.0, node.time - kernel_s) * 1e6))
        lines.append(f"{path} {max(1, self_usec)}")
        for child in node.children:
            emit(child, path)

    for i, root in enumerate(profiles):
        emit(root, f"stream_{i}" if len(profiles) > 1 else "")
    return "\n".join(lines) + "\n"


def profile_chrome_trace(profiles: Sequence[ProfileNode]) -> str:
    """Render profile trees as a Chrome-trace JSON string.

    The trace is a *synthetic* timeline reconstructed from cumulative
    times (the engine interleaves operators on one thread, so true
    intervals do not exist): each operator is an ``X`` event whose
    children nest after its self window, kernels as sub-events.
    """
    events: List[dict] = []

    def emit(node: ProfileNode, t0: float, tid: int) -> None:
        dur = max(node.cum_time, 1e-9)
        events.append({
            "name": node.label, "cat": "operator", "ph": "X",
            "ts": int(t0 * 1e6), "dur": max(1, int(dur * 1e6)),
            "pid": 1, "tid": tid,
            "args": {"rows_in": node.tuples_in, "rows_out": node.tuples_out,
                     "batches": node.batches},
        })
        cursor = t0
        for name in sorted(node.kernels):
            stat = node.kernels[name]
            events.append({
                "name": f"kernel:{name}", "cat": "kernel", "ph": "X",
                "ts": int(cursor * 1e6),
                "dur": max(1, int(stat.seconds * 1e6)),
                "pid": 1, "tid": tid,
                "args": {"calls": stat.calls, "rows": stat.rows,
                         "bytes": stat.bytes},
            })
            cursor += stat.seconds
        child_t = t0 + node.time
        for child in node.children:
            emit(child, child_t, tid)
            child_t += child.cum_time

    for i, root in enumerate(profiles):
        emit(root, 0.0, i + 1)
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      indent=1)


def query_kernel_table(
        profiles: Iterable[ProfileNode]) -> Dict[str, Dict[str, KernelStat]]:
    """Per-operator-kind kernel stats for one query (bench_hotpath)."""
    out: Dict[str, Dict[str, KernelStat]] = {}
    for root in profiles:
        for node in walk(root):
            if not node.kernels:
                continue
            kind = operator_kind(node.label)
            table = out.setdefault(kind, {})
            for name, stat in node.kernels.items():
                merged = table.get(name)
                if merged is None:
                    merged = table[name] = KernelStat()
                merged.merge(stat)
    return out
