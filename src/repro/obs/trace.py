"""Query-lifecycle tracing: nested spans over both clocks.

A :class:`Tracer` records nested :class:`Span`\\ s across the full query
lifecycle (parse -> bind -> rewrite -> assignment -> schedule ->
per-stream execute -> exchange flush/recv -> commit). Every span carries
*two* durations: wall time (``perf_counter``, what this single process
spent) and the simulator's charged time (the :class:`SimClock` advanced by
the stream scheduler -- the cluster-equivalent critical path). Traces
export as a text tree (which subsumes the old ``format_profile`` output:
operator profiles are grafted into the execute span) and as Chrome-trace
JSON loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import time as _time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


class SimClock:
    """Cumulative simulated seconds charged by the stream schedulers."""

    def __init__(self):
        self.seconds = 0.0

    def advance(self, dt: float) -> None:
        if dt > 0:
            self.seconds += dt


@dataclass
class Span:
    """One traced region; durations on both the wall and simulated clock."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    wall_start: float = 0.0
    wall_end: float = 0.0
    sim_start: float = 0.0
    sim_end: float = 0.0

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.wall_end - self.wall_start)

    @property
    def sim_seconds(self) -> float:
        return max(0.0, self.sim_end - self.sim_start)

    # -- navigation ----------------------------------------------------------

    def iter_spans(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, predicate: Callable[["Span"], bool]) -> List["Span"]:
        return [s for s in self.iter_spans() if predicate(s)]

    # -- exports -------------------------------------------------------------

    def tree(self, indent: int = 0) -> str:
        """Text rendering: one line per span, both clocks, key attrs."""
        pad = "  " * indent
        attrs = ""
        if self.attrs:
            body = " ".join(f"{k}={v}" for k, v in self.attrs.items())
            attrs = f"  [{body}]"
        lines = [
            f"{pad}{self.name}  wall={self.wall_seconds * 1e3:.3f}ms"
            f"  sim={self.sim_seconds * 1e3:.3f}ms{attrs}"
        ]
        for child in self.children:
            lines.append(child.tree(indent + 1))
        return "\n".join(lines)

    def chrome_trace(self) -> Dict[str, object]:
        """Chrome-trace ("trace event") dict for this span tree."""
        events: List[Dict[str, object]] = []
        base = self.wall_start

        def emit(span: Span) -> None:
            args = dict(span.attrs)
            args["sim_seconds"] = round(span.sim_seconds, 9)
            events.append({
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": round((span.wall_start - base) * 1e6, 3),
                "dur": round(span.wall_seconds * 1e6, 3),
                "args": args,
            })
            for child in span.children:
                emit(child)

        emit(self)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_trace_json(self, **kwargs) -> str:
        return json.dumps(self.chrome_trace(), **kwargs)


def span_from_profile(node, parent_span: Span) -> Span:
    """Graft one operator-profile tree under an execute span.

    Operator profiles measure wall time only; the grafted spans inherit
    the parent's timeline position and carry tuple counts, per-stream
    times and wire traffic as attributes -- this is what lets the trace
    tree subsume ``format_profile``.
    """
    attrs: Dict[str, object] = {
        "tuples_in": node.tuples_in,
        "tuples_out": node.tuples_out,
    }
    if len(node.stream_times) > 1:
        attrs["streams"] = len(node.stream_times)
        attrs["stream_min_s"] = round(min(node.stream_times), 6)
        attrs["stream_max_s"] = round(max(node.stream_times), 6)
    if node.net_bytes:
        attrs["net_bytes"] = node.net_bytes
    if node.net_messages:
        attrs["net_messages"] = node.net_messages
    span = Span(name=node.label, attrs=attrs)
    span.wall_start = parent_span.wall_start
    span.wall_end = parent_span.wall_start + node.cum_time
    span.sim_start = span.sim_end = parent_span.sim_start
    parent_span.children.append(span)
    for child in node.children:
        span_from_profile(child, span)
    return span


class Tracer:
    """Records span trees; always on (recording is a few dict writes).

    Spans opened while another span is active nest under it; a span
    opened with no active parent starts a new root trace, published on
    completion as :attr:`last_trace` (and kept in the bounded
    :attr:`finished` ring).
    """

    def __init__(self, sim_clock: Optional[SimClock] = None,
                 keep_last: int = 32):
        self.sim_clock = sim_clock or SimClock()
        self._stack: List[Span] = []
        self.last_trace: Optional[Span] = None
        self.finished: deque = deque(maxlen=keep_last)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def publish(self, span: Span) -> None:
        """Record an externally-assembled root span.

        The workload manager builds span trees by hand (its queries
        interleave, so the tracer's single stack cannot nest them) and
        publishes each finished tree here, making it visible to
        ``last_trace`` / ``finished`` / ``vh$queries`` exactly like a
        stack-recorded root.
        """
        self.last_trace = span
        self.finished.append(span)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        s = Span(name=name, attrs=attrs)
        s.wall_start = _time.perf_counter()
        s.sim_start = self.sim_clock.seconds
        parent = self.current
        if parent is not None:
            parent.children.append(s)
        self._stack.append(s)
        try:
            yield s
        finally:
            self._stack.pop()
            s.wall_end = _time.perf_counter()
            s.sim_end = self.sim_clock.seconds
            if parent is None:
                self.last_trace = s
                self.finished.append(s)


#: fallback for components not wired to a cluster (never published)
NULL_TRACER = Tracer()
