"""Append-only cluster event log, stamped with both clocks.

Metrics aggregate, traces cover one query -- events are the irregular
cluster-level facts in between: node failures and recoveries,
re-replication and rebalancing, YARN preemptions, 2PC outcomes, schema
changes, worker-set growth and shrinkage. Each event carries the
simulated clock (so it interleaves causally with query spans on the
cluster-equivalent timeline) plus wall time, a coarse ``source``
(hdfs/yarn/txn/cluster/monitor) and a ``kind`` with free-form
attributes. The log is append-only; ``vh$events`` exposes it through
SQL. A ``retention`` cap (default: keep everything) bounds memory for
soak runs -- on overflow the oldest events fall off the front, the
``dropped`` count (and the optional ``events_dropped_total`` counter)
records how many, and ``seq`` stays monotonic so gaps are visible.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One recorded cluster event."""

    seq: int
    sim_time: float  # SimClock seconds when the event happened
    wall_time: float  # time.time() for log correlation
    source: str  # hdfs | yarn | txn | cluster
    kind: str
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def detail(self) -> str:
        """Flat ``k=v`` rendering of the attributes (the vh$events form)."""
        return " ".join(f"{k}={v}" for k, v in self.attrs.items())


class ClusterEventLog:
    """Append-only event sink shared by every subsystem of one cluster."""

    def __init__(self, sim_clock=None, retention: int = 0, registry=None):
        self._sim_clock = sim_clock
        self.retention = int(retention)  # 0 = keep everything
        self._events: Deque[Event] = deque()
        self._seq = 0
        self.dropped = 0
        self._dropped_counter = None
        if registry is not None:
            self._dropped_counter = registry.counter(
                "events_dropped_total",
                "Cluster events evicted by the event-log retention cap")

    def emit(self, source: str, kind: str, **attrs) -> Event:
        sim = self._sim_clock.seconds if self._sim_clock is not None else 0.0
        event = Event(
            seq=self._seq,
            sim_time=sim,
            wall_time=_time.time(),
            source=source,
            kind=kind,
            attrs=dict(attrs),
        )
        self._seq += 1
        self._events.append(event)
        if self.retention and len(self._events) > self.retention:
            self._events.popleft()
            self.dropped += 1
            if self._dropped_counter is not None:
                self._dropped_counter.inc()
        return event

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def events(self) -> List[Event]:
        return list(self._events)

    def tail(self, n: int = 20) -> List[Event]:
        return list(self._events)[-n:]

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self._events if e.kind == kind]

    def of_source(self, source: str) -> List[Event]:
        return [e for e in self._events if e.source == source]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None
