"""The flight recorder: metric time-series, alert rules, query log.

Point-in-time snapshots (``vh$metrics``, a Prometheus scrape) show *now*;
long-running clusters degrade *over time* -- sustained admission
pressure, PDT memory growth, chaos-induced degradation. This module adds
the time dimension with three cooperating pieces, all driven from the
workload manager's round hook on the shared :class:`~repro.obs.SimClock`
(so everything here is deterministic whenever the workload is):

* :class:`MetricsHistory` -- samples **every** registry series into a
  bounded ring of whole-registry samples (configurable cadence and
  retention). On overflow the ring *compacts* instead of dropping: pairs
  of adjacent samples merge under a downsampling rule (``last`` for
  counters, ``max`` for gauges by default; ``sum`` available) and the
  effective cadence doubles -- old history gets coarser, never lost.
  Queryable as ``vh$metrics_history``; exportable as JSON.

* :class:`HealthMonitor` -- declarative :class:`AlertRule`\\ s
  (threshold-over-window on gauges, counter *rates*, histogram
  *quantiles*) evaluated at every sample on the sim clock. Alerts raise
  after a breach is sustained ``for_seconds`` and clear after recovery,
  emitting ``alert.raised`` / ``alert.cleared`` cluster events; the full
  raise/clear sequence is visible in ``vh$alerts`` and is bit-identical
  across same-seed runs.

* :class:`QueryLog` -- every terminal managed query (finished, failed,
  cancelled) appends one :class:`QueryLogRecord` with its SQL
  fingerprint, plan-fragment signature, both clocks, rows, peak memory,
  wire bytes, retries, replans, max q-error and admission wait. The log
  is *not* registry-backed, so it survives ``metrics().reset()``; it
  powers the slow-query report and ``benchmarks/trajectory.py``.

:class:`FlightRecorder` is the facade a
:class:`~repro.cluster.VectorHCluster` owns: it publishes a few derived
gauges (per-node live workload memory, alive datanodes, minimum
replication degree) right before each sample so rules can watch them.

Import note: like ``repro.obs.events`` this module must stay free of
storage/mpp imports (``collect_actuals`` is imported lazily), so
``repro.obs`` can export it eagerly.
"""

from __future__ import annotations

import hashlib
import itertools
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    _escape_label_value,
    _format_value,
    quantile_from_buckets,
)

#: one recorded series value: (family name, ((label, value), ...))
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


# ---------------------------------------------------------------------------
# MetricsHistory: the bounded flight-recorder ring
# ---------------------------------------------------------------------------

@dataclass
class HistorySample:
    """One whole-registry sample at one simulated instant."""

    seq: int
    sim_time: float
    values: Dict[SeriesKey, float]

    def value(self, name: str, agg: str = "sum") -> Optional[float]:
        """Aggregate every series of family ``name`` in this sample."""
        got = [v for (n, _), v in self.values.items() if n == name]
        if not got:
            return None
        if agg == "sum":
            return sum(got)
        if agg == "max":
            return max(got)
        if agg == "min":
            return min(got)
        if agg == "avg":
            return sum(got) / len(got)
        raise ReproError(f"unknown aggregation {agg!r}")


def _labels_text(pairs: Tuple[Tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in pairs)


#: registry families measured on the *wall* clock, not the simulated
#: one: their values vary run-to-run even under workload_deterministic,
#: so the history skips them to keep same-seed samples bit-identical
WALL_CLOCK_FAMILIES = frozenset({
    "executor_stream_seconds",
    "operator_wall_seconds_total",
    "kernel_wall_seconds_total",
})


class MetricsHistory:
    """Ring buffer of whole-registry samples with downsampling overflow.

    ``cadence`` is the simulated-seconds spacing between samples
    (``0`` = sample every workload round). ``retention`` bounds the
    sample count: on overflow, adjacent sample pairs merge under the
    ``downsample`` rule and the effective cadence doubles, so memory is
    bounded while the full time range stays covered at decaying
    resolution. ``downsample`` is ``auto`` (counters/histogram totals
    keep the *last* value of a merged pair, gauges keep the *max* --
    watermarks survive), or a forced ``last`` / ``max`` / ``sum``.
    ``exclude`` names families left out of every sample (defaults to the
    wall-clock-measured ones, which would break same-seed bit-identity).
    """

    MODES = ("auto", "last", "max", "sum")

    def __init__(self, registry: MetricsRegistry, sim_clock,
                 cadence: float = 1e-4, retention: int = 256,
                 downsample: str = "auto",
                 exclude: frozenset = WALL_CLOCK_FAMILIES):
        if downsample not in self.MODES:
            raise ReproError(
                f"downsample must be one of {self.MODES}, got {downsample!r}")
        self.registry = registry
        self.sim_clock = sim_clock
        self.cadence = float(cadence)
        self.retention = max(4, int(retention))
        self.downsample = downsample
        self.exclude = frozenset(exclude)
        #: current sample spacing; doubles on every compaction
        self.interval = self.cadence
        self._every = 1  # round stride when cadence == 0
        self._rounds_since = 0
        self.samples: List[HistorySample] = []
        self.compactions = 0
        self._seq = itertools.count()
        self._kinds: Dict[str, str] = {}

    # -- sampling ------------------------------------------------------------

    def due(self) -> bool:
        if not self.samples:
            return True
        if self.cadence > 0:
            last = self.samples[-1].sim_time
            return self.sim_clock.seconds - last >= self.interval - 1e-12
        return self._rounds_since >= self._every

    def note_round(self) -> None:
        self._rounds_since += 1

    def sample(self) -> HistorySample:
        """Record one sample of every registry series, now."""
        values: Dict[SeriesKey, float] = {}
        for family in self.registry.families():
            if family.name in self.exclude:
                continue
            names = tuple(family.label_names)
            if family.kind == "histogram":
                self._kinds[family.name + "_count"] = "counter"
                self._kinds[family.name + "_sum"] = "counter"
                for key, data in family.snapshot().items():
                    pairs = tuple(zip(names, key))
                    values[(family.name + "_count", pairs)] = \
                        float(data["count"])
                    values[(family.name + "_sum", pairs)] = float(data["sum"])
            else:
                self._kinds[family.name] = family.kind
                for key, value in family.snapshot().items():
                    values[(family.name, tuple(zip(names, key)))] = \
                        float(value)
        sample = HistorySample(next(self._seq), self.sim_clock.seconds,
                               values)
        self.samples.append(sample)
        self._rounds_since = 0
        if len(self.samples) > self.retention:
            self._compact()
        return sample

    def _agg_mode(self, name: str) -> str:
        if self.downsample != "auto":
            return self.downsample
        return "last" if self._kinds.get(name) == "counter" else "max"

    def _compact(self) -> None:
        """Merge adjacent sample pairs; effective cadence doubles."""
        merged: List[HistorySample] = []
        samples = self.samples
        i = 0
        while i < len(samples):
            if i + 1 == len(samples):
                merged.append(samples[i])
                break
            a, b = samples[i], samples[i + 1]
            values = dict(a.values)
            for key, vb in b.values.items():
                va = values.get(key)
                if va is None:
                    values[key] = vb
                    continue
                mode = self._agg_mode(key[0])
                if mode == "last":
                    values[key] = vb
                elif mode == "max":
                    values[key] = max(va, vb)
                else:  # sum
                    values[key] = va + vb
            merged.append(HistorySample(b.seq, b.sim_time, values))
            i += 2
        self.samples = merged
        self.interval *= 2
        self._every *= 2
        self.compactions += 1

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def series(self, name: str,
               labels: Optional[Dict[str, object]] = None,
               agg: str = "sum") -> List[Tuple[float, float]]:
        """One family's time series: ``[(sim_time, value), ...]``.

        With ``labels`` only the exactly-matching series contributes;
        otherwise every series of the family is aggregated per sample.
        """
        out: List[Tuple[float, float]] = []
        want = (tuple(sorted((k, str(v)) for k, v in labels.items()))
                if labels is not None else None)
        for sample in self.samples:
            if want is None:
                value = sample.value(name, agg=agg)
                if value is not None:
                    out.append((sample.sim_time, value))
                continue
            for (n, pairs), v in sample.values.items():
                if n == name and tuple(sorted(pairs)) == want:
                    out.append((sample.sim_time, v))
                    break
        return out

    def rows(self) -> List[tuple]:
        """``vh$metrics_history`` rows: (sample, sim_time, metric, labels,
        value), sorted within each sample for determinism."""
        out = []
        for sample in self.samples:
            for (name, pairs), value in sorted(sample.values.items()):
                out.append((sample.seq, sample.sim_time, name,
                            _labels_text(pairs), float(value)))
        return out

    # -- exports -------------------------------------------------------------

    def render_latest(self) -> str:
        """Prometheus-style exposition of the newest sample."""
        if not self.samples:
            return ""
        sample = self.samples[-1]
        lines = [f"# metrics_history sample={sample.seq} "
                 f"sim_time={sample.sim_time!r}"]
        for (name, pairs), value in sorted(sample.values.items()):
            body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                            for k, v in pairs)
            labels = "{" + body + "}" if body else ""
            lines.append(f"{name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def export_json(self) -> dict:
        return {
            "cadence_s": self.cadence,
            "interval_s": self.interval,
            "retention": self.retention,
            "compactions": self.compactions,
            "samples": [
                {
                    "seq": s.seq,
                    "sim_time": s.sim_time,
                    "values": {
                        (f"{name}{{{_labels_text(pairs)}}}" if pairs
                         else name): value
                        for (name, pairs), value in sorted(s.values.items())
                    },
                }
                for s in self.samples
            ],
        }


# ---------------------------------------------------------------------------
# HealthMonitor: declarative threshold-over-window alert rules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AlertRule:
    """One declarative health rule, evaluated at every history sample.

    ``kind`` selects how the watched value is computed:

    * ``gauge`` -- the metric's current sampled value, ``agg``\\ regated
      across its label series (``max``/``min``/``sum``/``avg``);
    * ``rate`` -- the counter's increase per simulated second over the
      trailing ``window_s`` (0 = since the first sample);
    * ``quantile`` -- the ``q``-quantile of a histogram, interpolated
      from bucket counts over the trailing ``window_s`` (0 = ever).

    The alert raises once ``value <op> threshold`` has held for
    ``for_seconds`` of simulated time, and clears once the breach has
    been gone for ``clear_for_seconds`` (both default 0: act on the
    first sample that crosses).
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    kind: str = "gauge"
    agg: str = "max"
    q: float = 0.95
    window_s: float = 0.0
    for_seconds: float = 0.0
    clear_for_seconds: float = 0.0
    help: str = ""

    def breached(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        raise ReproError(f"unknown alert operator {self.op!r}")


@dataclass
class Alert:
    """One alert instance: raised once, possibly cleared later."""

    seq: int
    rule: str
    metric: str
    value: float  # watched value at raise time
    threshold: float
    raised_sim: float
    cleared_sim: Optional[float] = None
    peak: float = 0.0

    @property
    def state(self) -> str:
        return "cleared" if self.cleared_sim is not None else "firing"

    def key(self) -> tuple:
        """Wall-time-free identity for determinism comparisons."""
        return (self.rule, self.metric, round(self.raised_sim, 9),
                None if self.cleared_sim is None
                else round(self.cleared_sim, 9),
                round(self.value, 9), round(self.peak, 9))


class _RuleState:
    __slots__ = ("rule", "breach_since", "ok_since", "active", "evaluations")

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.breach_since: Optional[float] = None
        self.ok_since: Optional[float] = None
        self.active: Optional[Alert] = None
        self.evaluations = 0


class HealthMonitor:
    """Evaluates alert rules on sampled series; owns the alert history."""

    def __init__(self, cluster, rules: Sequence[AlertRule]):
        self.cluster = cluster
        self.rules: List[AlertRule] = list(rules)
        self._states: Dict[str, _RuleState] = {
            r.name: _RuleState(r) for r in self.rules}
        self.alerts: List[Alert] = []
        self._seq = itertools.count()
        #: per-quantile-rule window of (sim_time, bucket counts, count)
        self._hist_windows: Dict[str, List[tuple]] = {}
        registry = cluster.registry
        self._raised = registry.counter(
            "alerts_raised_total", "Alerts raised, by rule",
            labels=("rule",))
        self._cleared = registry.counter(
            "alerts_cleared_total", "Alerts cleared, by rule",
            labels=("rule",))
        self._firing = registry.gauge(
            "alerts_firing", "Alerts currently firing", sticky=True)
        self._firing.set(0)

    # -- bookkeeping ---------------------------------------------------------

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._states:
            raise ReproError(f"alert rule {rule.name} already registered")
        self.rules.append(rule)
        self._states[rule.name] = _RuleState(rule)

    def state(self, name: str) -> _RuleState:
        return self._states[name]

    def evaluations(self, name: Optional[str] = None) -> int:
        if name is not None:
            return self._states[name].evaluations
        return sum(s.evaluations for s in self._states.values())

    def firing(self) -> List[Alert]:
        return [a for a in self.alerts if a.cleared_sim is None]

    def sequence(self) -> List[tuple]:
        """Deterministic raise/clear history (for same-seed comparisons)."""
        return [a.key() for a in self.alerts]

    def rows(self) -> List[tuple]:
        """``vh$alerts`` rows (``cleared_sim`` is -1 while firing)."""
        return [
            (a.seq, a.rule, a.metric, a.state, float(a.value),
             float(a.threshold), a.raised_sim,
             -1.0 if a.cleared_sim is None else a.cleared_sim,
             float(a.peak))
            for a in self.alerts
        ]

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, history: MetricsHistory,
                 sample: HistorySample) -> None:
        """Run every rule against the new sample (on the sim clock)."""
        now = sample.sim_time
        for rule in self.rules:
            value = self._value(rule, history, sample, now)
            if value is None:
                continue
            state = self._states[rule.name]
            state.evaluations += 1
            if rule.breached(value):
                state.ok_since = None
                if state.breach_since is None:
                    state.breach_since = now
                if state.active is not None:
                    state.active.peak = max(state.active.peak, value)
                elif now - state.breach_since >= rule.for_seconds:
                    self._raise(state, value, now)
            else:
                state.breach_since = None
                if state.active is None:
                    state.ok_since = None
                    continue
                if state.ok_since is None:
                    state.ok_since = now
                if now - state.ok_since >= rule.clear_for_seconds:
                    self._clear(state, now)

    def _value(self, rule: AlertRule, history: MetricsHistory,
               sample: HistorySample, now: float) -> Optional[float]:
        if rule.kind == "gauge":
            return sample.value(rule.metric, agg=rule.agg)
        if rule.kind == "rate":
            return self._rate(rule, history, sample, now)
        if rule.kind == "quantile":
            return self._quantile(rule, now)
        raise ReproError(f"unknown alert rule kind {rule.kind!r}")

    def _rate(self, rule: AlertRule, history: MetricsHistory,
              sample: HistorySample, now: float) -> Optional[float]:
        current = sample.value(rule.metric, agg="sum")
        if current is None:
            return None
        floor = now - rule.window_s if rule.window_s > 0 else -1.0
        base = None
        for past in history.samples:
            if past is sample:
                break
            if past.sim_time >= floor:
                base = past
                break
        if base is None:
            return None
        then = base.value(rule.metric, agg="sum") or 0.0
        dt = now - base.sim_time
        if dt <= 0:
            return None
        return (current - then) / dt

    def _quantile(self, rule: AlertRule, now: float) -> Optional[float]:
        family = self.cluster.registry.get(rule.metric)
        if not isinstance(family, Histogram):
            return None
        # aggregate bucket counts across every label series
        counts = [0] * len(family.buckets)
        total = 0
        for state in family._series.values():
            for i, n in enumerate(state.bucket_counts):
                counts[i] += n
            total += state.count
        if rule.window_s <= 0:
            if total == 0:
                return None
            return quantile_from_buckets(family.buckets, counts, total,
                                         rule.q)
        window = self._hist_windows.setdefault(rule.name, [])
        window.append((now, counts, total))
        while len(window) > 1 and window[1][0] <= now - rule.window_s:
            window.pop(0)
        _, base_counts, base_total = window[0]
        d_total = total - base_total
        if d_total <= 0:
            return None
        d_counts = [c - b for c, b in zip(counts, base_counts)]
        return quantile_from_buckets(family.buckets, d_counts, d_total,
                                     rule.q)

    # -- transitions ---------------------------------------------------------

    def _emit(self, kind: str, **attrs) -> None:
        events = getattr(self.cluster, "events", None)
        if events is not None:
            events.emit("monitor", kind, **attrs)

    def _raise(self, state: _RuleState, value: float, now: float) -> None:
        alert = Alert(seq=next(self._seq), rule=state.rule.name,
                      metric=state.rule.metric, value=value,
                      threshold=state.rule.threshold, raised_sim=now,
                      peak=value)
        state.active = alert
        self.alerts.append(alert)
        self._raised.inc(rule=state.rule.name)
        self._firing.set(len(self.firing()))
        self._emit("alert.raised", rule=state.rule.name,
                   metric=state.rule.metric, value=round(value, 9),
                   threshold=state.rule.threshold)

    def _clear(self, state: _RuleState, now: float) -> None:
        alert = state.active
        alert.cleared_sim = now
        state.active = None
        state.ok_since = None
        self._cleared.inc(rule=state.rule.name)
        self._firing.set(len(self.firing()))
        self._emit("alert.cleared", rule=state.rule.name,
                   metric=state.rule.metric,
                   after=round(now - alert.raised_sim, 9),
                   peak=round(alert.peak, 9))


def default_rules(cluster) -> List[AlertRule]:
    """The stock rule set, thresholds from the cluster's config."""
    config = cluster.config
    rules = [
        AlertRule(
            "admission_backlog", "admission_queue_depth",
            threshold=float(getattr(config, "alert_queue_depth", 1.0)),
            op=">=", kind="gauge", agg="sum",
            for_seconds=getattr(config, "alert_queue_window_s", 0.0),
            help="queries waiting for core slots or memory budget"),
        AlertRule(
            "query_wait_p95", "query_wait_seconds",
            threshold=float(getattr(config, "alert_wait_p95_s", 0.25)),
            op=">", kind="quantile", q=0.95,
            help="p95 simulated admission wait"),
        AlertRule(
            "replication_degraded", "cluster_replication_min_degree",
            threshold=float(min(config.replication,
                                len(cluster.workers))),
            op="<", kind="gauge", agg="min",
            help="some partition file has lost replicas"),
    ]
    budget_mb = getattr(config, "workload_memory_budget_mb", 0)
    if budget_mb:
        fraction = getattr(config, "alert_memory_fraction", 0.9)
        rules.append(AlertRule(
            "memory_watermark", "workload_memory_bytes",
            threshold=fraction * budget_mb * 1024 * 1024,
            op=">", kind="gauge", agg="max",
            help="a node's live query memory nears the admission budget"))
    replan_rate = getattr(config, "alert_replan_rate", 0.0)
    if replan_rate:
        rules.append(AlertRule(
            "replan_storm", "replans_total", threshold=replan_rate,
            op=">", kind="rate", window_s=0.0,
            help="mid-query re-plans per simulated second"))
    saturation = getattr(config, "alert_tenant_saturation", 0.0)
    if saturation:
        rules.append(AlertRule(
            "tenant_quota_saturated", "tenant_quota_saturation",
            threshold=float(saturation), op=">=", kind="gauge", agg="max",
            for_seconds=getattr(config, "alert_tenant_window_s", 0.0),
            help="a tenant's admission backlog meets or exceeds its "
                 "concurrency quota"))
    return rules


# ---------------------------------------------------------------------------
# QueryLog: the persistent per-query record
# ---------------------------------------------------------------------------

_SQL_STRINGS = re.compile(r"'[^']*'")
_SQL_NUMBERS = re.compile(r"\b\d+(?:\.\d+)?\b")


def sql_fingerprint(statement: str) -> str:
    """Literal-insensitive statement identity (12 hex chars).

    Lowercases, replaces string and numeric literals with ``?`` and
    collapses whitespace, so the two Q6 variants of a parameter sweep
    share one fingerprint while Q1 and Q6 do not.
    """
    norm = _SQL_STRINGS.sub("?", statement.lower())
    norm = _SQL_NUMBERS.sub("?", norm)
    norm = " ".join(norm.split())
    return hashlib.sha1(norm.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class QueryLogRecord:
    """One terminal managed query, as ``vh$query_log`` shows it."""

    query_id: int
    session_id: int
    state: str  # finished | failed | cancelled
    fingerprint: str
    plan_signature: str
    statement: str
    wall_s: float
    sim_s: float
    wait_s: float
    rounds: int
    rows: int
    peak_memory_bytes: int
    wire_bytes: int
    retries: int
    replans: int
    max_qerror: float
    #: operator kind dominating the query's deterministic sim cost
    dominant_op: str = ""
    #: that operator's share of the query's total sim cost (0..1)
    dominant_share: float = 0.0
    #: the tenant whose admission queue the query ran under
    tenant: str = ""


class QueryLog:
    """Bounded append-only log of terminal queries; survives metric resets.

    ``retention`` caps the record count (0 = keep all); overflow drops
    the oldest record and counts it in ``dropped`` (and the
    ``query_log_dropped_total`` counter when a registry is attached).
    """

    def __init__(self, retention: int = 0,
                 registry: Optional[MetricsRegistry] = None):
        self.retention = int(retention)
        self._records: List[QueryLogRecord] = []
        self.dropped = 0
        self._appended = None
        self._dropped_counter = None
        if registry is not None:
            self._appended = registry.counter(
                "query_log_records_total",
                "Terminal queries appended to the query log, by state",
                labels=("state",))
            self._dropped_counter = registry.counter(
                "query_log_dropped_total",
                "Query-log records dropped by the retention cap")

    def append(self, record: QueryLogRecord) -> None:
        self._records.append(record)
        if self._appended is not None:
            self._appended.inc(state=record.state)
        if self.retention and len(self._records) > self.retention:
            self._records.pop(0)
            self.dropped += 1
            if self._dropped_counter is not None:
                self._dropped_counter.inc()

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[QueryLogRecord]:
        return list(self._records)

    def rows(self) -> List[tuple]:
        """``vh$query_log`` rows, in append order."""
        return [
            (r.query_id, r.session_id, r.state, r.fingerprint,
             r.plan_signature, r.statement, r.wall_s * 1e3, r.sim_s * 1e3,
             r.wait_s * 1e3, r.rows, r.peak_memory_bytes, r.wire_bytes,
             r.retries, r.replans, r.max_qerror,
             r.dominant_op, r.dominant_share, r.tenant)
            for r in self._records
        ]

    # -- reports -------------------------------------------------------------

    def slow_report(self, n: int = 10) -> str:
        """The n slowest queries by simulated time, one line each."""
        worst = sorted(self._records, key=lambda r: (-r.sim_s, r.query_id))
        lines = [f"{'query':>6} {'state':<9} {'sim':>10} {'wall':>10} "
                 f"{'wait':>10} {'rows':>8} {'peak mem':>10} {'q-err':>6} "
                 f"{'dominant':<18} {'tenant':<10} fingerprint"]
        for r in worst[:n]:
            dominant = (f"{r.dominant_op} {100 * r.dominant_share:.0f}%"
                        if r.dominant_op else "-")
            lines.append(
                f"{r.query_id:>6} {r.state:<9} {r.sim_s * 1e3:>8.3f}ms "
                f"{r.wall_s * 1e3:>8.3f}ms {r.wait_s * 1e3:>8.3f}ms "
                f"{r.rows:>8} {r.peak_memory_bytes:>10} "
                f"{r.max_qerror:>6.1f} {dominant:<18} "
                f"{r.tenant or '-':<10} {r.fingerprint}")
        return "\n".join(lines)

    def fingerprint_stats(self) -> Dict[str, dict]:
        """Per-fingerprint aggregates (the BENCH_query_log.json shape)."""
        out: Dict[str, dict] = {}
        for r in self._records:
            entry = out.setdefault(r.fingerprint, {
                "count": 0, "sim_s": 0.0, "wall_s": 0.0, "rows": 0,
                "retries": 0, "replans": 0, "max_qerror": 0.0,
                "statement": r.statement[:120],
            })
            entry["count"] += 1
            entry["sim_s"] += r.sim_s
            entry["wall_s"] += r.wall_s
            entry["rows"] += r.rows
            entry["retries"] += r.retries
            entry["replans"] += r.replans
            entry["max_qerror"] = max(entry["max_qerror"], r.max_qerror)
        return out


def _max_qerror(phys, annotations, profiles) -> float:
    """Worst per-operator q-error of a finished query (1.0 = perfect)."""
    from repro.mpp.feedback import collect_actuals
    worst = 0.0
    for node, actual in collect_actuals(phys, profiles).items():
        ann = annotations.get(node) if annotations else None
        if ann is None:
            continue
        a = max(float(actual), 1.0)
        e = max(float(ann.rows), 1.0)
        worst = max(worst, a / e, e / a)
    return worst


# ---------------------------------------------------------------------------
# FlightRecorder: the facade the cluster owns
# ---------------------------------------------------------------------------

class FlightRecorder:
    """Sampler + alert engine + query log, ticking on workload rounds."""

    def __init__(self, cluster, rules: Optional[Sequence[AlertRule]] = None):
        config = cluster.config
        self.cluster = cluster
        self.history = MetricsHistory(
            cluster.registry, cluster.sim_clock,
            cadence=getattr(config, "monitor_cadence_s", 1e-4),
            retention=getattr(config, "monitor_retention", 256),
            downsample=getattr(config, "monitor_downsample", "auto"),
        )
        self.health = HealthMonitor(
            cluster, default_rules(cluster) if rules is None else rules)
        self.query_log = QueryLog(
            retention=getattr(config, "query_log_retention", 0),
            registry=cluster.registry,
        )
        registry = cluster.registry
        self._g_mem = registry.gauge(
            "workload_memory_bytes",
            "Live per-node memory of admitted queries (sampled)",
            labels=("node",), sticky=True)
        self._g_alive = registry.gauge(
            "hdfs_nodes_alive", "Datanodes currently alive", sticky=True)
        self._g_workers = registry.gauge(
            "cluster_workers", "Workers in the negotiated set", sticky=True)
        self._g_repl = registry.gauge(
            "cluster_replication_min_degree",
            "Alive replicas of the worst-covered partition file",
            sticky=True)

    # -- the round hook ------------------------------------------------------

    def tick(self) -> None:
        """Round hook: sample + evaluate when the cadence says so."""
        self.history.note_round()
        if not self.history.due():
            return
        self.sample()

    def sample(self) -> HistorySample:
        """Force one sample + rule evaluation right now."""
        self._publish_derived()
        sample = self.history.sample()
        self.health.evaluate(self.history, sample)
        return sample

    def _publish_derived(self) -> None:
        """Refresh the gauges that only exist as object state."""
        cluster = self.cluster
        workload = getattr(cluster, "workload", None)
        if workload is not None:
            for node, live in sorted(workload.meter.current.items()):
                self._g_mem.set(max(0, live), node=node)
        hdfs = getattr(cluster, "hdfs", None)
        if hdfs is not None:
            self._g_alive.set(
                sum(1 for n in hdfs.nodes.values() if n.alive))
            self._g_repl.set(self._min_replication_degree())
        self._g_workers.set(len(getattr(cluster, "workers", ())))

    def _min_replication_degree(self) -> int:
        cluster = self.cluster
        degree: Optional[int] = None
        for stored in cluster.tables.values():
            for part in stored.partitions:
                for path in part.file_paths():
                    alive = sum(
                        1 for h in cluster.hdfs.replica_locations(path)
                        if cluster.hdfs.nodes[h].alive)
                    degree = alive if degree is None else min(degree, alive)
        if degree is None:
            return min(cluster.config.replication,
                       max(1, len(cluster.workers)))
        return degree

    # -- query log -----------------------------------------------------------

    def record_query(self, record) -> QueryLogRecord:
        """Append a terminal workload-manager record to the query log."""
        result = record.result
        statement = record.statement or record.root_label
        plan_signature = ""
        annotations = None
        phys = record.phys
        qplan = record.qplan
        if qplan is not None:
            annotations = qplan.annotations
            phys = qplan.root
        if result is not None:
            phys = getattr(result, "_final_root", phys)
            annotations = getattr(result, "_annotations", annotations)
        if annotations is not None and phys is not None:
            ann = annotations.get(phys)
            plan_signature = getattr(ann, "signature", "") or ""
        if not plan_signature and phys is not None:
            plan_signature = phys.describe()
        max_qerror = 0.0
        if result is not None and annotations is not None:
            try:
                max_qerror = _max_qerror(phys, annotations, result.profiles)
            except Exception:  # noqa: BLE001 - diagnostics must not fail
                max_qerror = 0.0
        dominant_op, dominant_share = "", 0.0
        if result is not None and result.profiles:
            try:
                from repro.obs.profiler import dominant_operator
                dominant_op, dominant_share = dominant_operator(
                    result.profiles)
            except Exception:  # noqa: BLE001 - diagnostics must not fail
                dominant_op, dominant_share = "", 0.0
        # programmatic submissions carry no SQL text: fingerprint the
        # normalized plan signature so distinct plans stay distinct. A
        # pre-computed fingerprint (prepared statements) wins outright,
        # so every execution of one template aggregates as one entry
        # whatever literals were bound.
        fp_source = record.statement or plan_signature or statement
        fingerprint = (getattr(record, "fingerprint", "")
                       or sql_fingerprint(fp_source))
        log_record = QueryLogRecord(
            query_id=record.query_id,
            session_id=record.session_id,
            state=record.state,
            fingerprint=fingerprint,
            plan_signature=plan_signature,
            statement=statement,
            wall_s=max(0.0, record.finish_wall - record.submit_wall),
            sim_s=max(0.0, record.finish_sim - record.submit_sim),
            wait_s=record.wait_sim,
            rounds=record.rounds,
            rows=(result.batch.n if result is not None else 0),
            peak_memory_bytes=(result.peak_memory_bytes
                               if result is not None else 0),
            wire_bytes=(result.network_bytes if result is not None else 0),
            retries=record.retries,
            replans=(result.replans if result is not None else 0),
            max_qerror=max_qerror,
            dominant_op=dominant_op,
            dominant_share=dominant_share,
            tenant=getattr(record, "tenant", ""),
        )
        self.query_log.append(log_record)
        return log_record
