"""Executes distributed physical plans over the simulated cluster.

Between exchange boundaries the executor composes the plan into one
vectorized engine fragment and runs it once per stream (one stream per
worker node; the master is one more stream). Exchange nodes materialize and
reshuffle batches, charging every cross-node byte to the MPI fabric; the
intra-node share is a pointer pass, as in the real DXchg.

Reported timings: ``elapsed`` is real single-process wall time;
``simulated_parallel_seconds`` charges each fragment with its *slowest
stream* only, which is what a cluster with perfectly overlapped streams
would observe.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ExecutionError
from repro.engine.batch import Batch, concat_batches
from repro.engine.expressions import Col
from repro.engine.operators import (
    HashAggr,
    HashJoin,
    Limit,
    MergeJoin,
    Operator,
    Project,
    Select,
    Sort,
    TopN,
    VectorSource,
)
from repro.engine.profile import ProfileNode, format_profile
from repro.mpp import plan as P

MASTER_STREAM = "__master__"


@dataclass
class DistRel:
    """A distributed relation: one batch per stream."""

    kind: str  # partitioned | replicated | master
    per_node: Dict[str, Batch] = field(default_factory=dict)
    batch: Optional[Batch] = None

    def stream_batch(self, stream: str) -> Batch:
        if self.kind == P.PARTITIONED:
            return self.per_node[stream]
        assert self.batch is not None
        return self.batch


@dataclass
class QueryResult:
    batch: Batch
    elapsed: float
    simulated_parallel_seconds: float
    network_bytes: int
    network_messages: int
    bytes_read: int
    profiles: List[ProfileNode] = field(default_factory=list)
    plan_text: str = ""

    def format_profile(self) -> str:
        return "\n".join(format_profile(p) for p in self.profiles)

    def simulated_total_seconds(self,
                                network_bandwidth: float = 1.25e9) -> float:
        """Compute time (slowest stream per fragment) plus network time at
        the given per-link bandwidth (default: 10Gb Ethernet, the paper's
        cluster)."""
        return (self.simulated_parallel_seconds
                + self.network_bytes / network_bandwidth)


def estimate_batch_bytes(batch: Batch) -> int:
    """Serialized size estimate (PAX-layout MPI buffers)."""
    total = 0
    for values in batch.columns.values():
        if values.dtype == object:
            if len(values) == 0:
                continue
            sample = values[: min(64, len(values))]
            avg = sum(len(str(v)) for v in sample) / len(sample)
            total += int((avg + 4) * len(values))
        else:
            total += values.nbytes
    return total


def _hash_to_streams(batch: Batch, keys, workers: List[str]) -> np.ndarray:
    """Generic DXchg hash: Knuth-mixed so it scatters independently of any
    table's partition function (aligned routing goes through the table's
    own partition_ids instead)."""
    h = np.zeros(batch.n, dtype=np.int64)
    for key in keys:
        col = batch.columns[key]
        if col.dtype.kind in "OUS":  # object / unicode / bytes
            hashed = np.fromiter((hash(v) for v in col), np.int64, batch.n)
        else:
            hashed = col.astype(np.int64)
        h = ((h + hashed) * 2654435761) & 0x7FFFFFFF
    return h % len(workers)


class MppExecutor:
    """Runs physical plans against a VectorH cluster object."""

    def __init__(self, cluster):
        self.cluster = cluster

    # ------------------------------------------------------------------ public

    def execute(self, root: P.PhysNode, trans=None) -> QueryResult:
        self._trans = trans
        self._memo: Dict[int, DistRel] = {}
        self._profiles: List[ProfileNode] = []
        self._sim_seconds = 0.0
        mpi = self.cluster.mpi
        net0_bytes, net0_msgs = mpi.total_bytes, mpi.total_messages
        read0 = self.cluster.hdfs.total_bytes_read()
        start = _time.perf_counter()
        rel = self._execute(root)
        if rel.kind != P.MASTER:
            rel = self._gather(rel)
        elapsed = _time.perf_counter() - start
        return QueryResult(
            batch=rel.batch if rel.batch is not None else Batch({}, 0),
            elapsed=elapsed,
            simulated_parallel_seconds=self._sim_seconds,
            network_bytes=mpi.total_bytes - net0_bytes,
            network_messages=mpi.total_messages - net0_msgs,
            bytes_read=self.cluster.hdfs.total_bytes_read() - read0,
            profiles=self._profiles,
            plan_text=root.pretty(),
        )

    # ------------------------------------------------------------------ driver

    def _execute(self, phys: P.PhysNode) -> DistRel:
        cached = self._memo.get(id(phys))
        if cached is not None:
            return cached
        if isinstance(phys, P.PScan):
            rel = self._run_scan(phys)
        elif isinstance(phys, P.DXUnion):
            rel = self._gather(self._execute(phys.children[0]))
        elif isinstance(phys, P.DXBroadcast):
            rel = self._broadcast(self._execute(phys.children[0]))
        elif isinstance(phys, P.DXHashSplit):
            rel = self._hash_split(self._execute(phys.children[0]),
                                   phys.keys, phys.align_with)
        else:
            rel = self._run_fragment(phys)
        self._memo[id(phys)] = rel
        return rel

    def _streams_for(self, dist: P.Distribution) -> List[str]:
        if dist.kind == P.MASTER:
            return [MASTER_STREAM]
        return list(self.cluster.workers)

    def _run_fragment(self, phys: P.PhysNode) -> DistRel:
        dist = phys.distribution
        streams = self._streams_for(dist)
        if dist.kind == P.REPLICATED:
            # identical everywhere; compute once, charge the slowest stream
            streams = streams[:1]
        results: Dict[str, Batch] = {}
        merged_profile: Optional[ProfileNode] = None
        stream_times: List[float] = []
        for stream in streams:
            op = self._build_op(phys, stream)
            t0 = _time.perf_counter()
            batch = op.run_to_batch()
            stream_times.append(_time.perf_counter() - t0)
            results[stream] = batch
            if op.profile is not None:
                if merged_profile is None:
                    merged_profile = op.profile
                    merged_profile.stream_times.append(stream_times[-1])
                else:
                    merged_profile.merge_stream(op.profile)
        if merged_profile is not None:
            self._profiles.append(merged_profile)
        self._sim_seconds += max(stream_times) if stream_times else 0.0
        if dist.kind == P.MASTER:
            return DistRel(P.MASTER, batch=results[MASTER_STREAM])
        if dist.kind == P.REPLICATED:
            return DistRel(P.REPLICATED, batch=results[streams[0]])
        return DistRel(P.PARTITIONED, per_node=results)

    # ------------------------------------------------------------- fragments

    def _build_op(self, phys: P.PhysNode, stream: str) -> Operator:
        """Compose the engine operator tree for one stream."""
        if isinstance(phys, (P.PScan, P.DXUnion, P.DXBroadcast,
                             P.DXHashSplit)):
            rel = self._execute(phys)
            batch = rel.stream_batch(
                stream if rel.kind == P.PARTITIONED else stream
            )
            return VectorSource(batch.columns, self._vector_size(),
                                label=phys.describe())
        kids = [self._build_op(c, stream) for c in phys.children]
        if isinstance(phys, P.PSelect):
            return Select(kids[0], phys.predicate)
        if isinstance(phys, P.PProject):
            return Project(kids[0], phys.outputs)
        if isinstance(phys, P.PAggr):
            return HashAggr(kids[0], phys.group_by, phys.aggregates)
        if isinstance(phys, P.PHashJoin):
            return HashJoin(kids[0], kids[1], phys.build_keys,
                            phys.probe_keys, phys.how, phys.build_payload)
        if isinstance(phys, P.PMergeJoin):
            return MergeJoin(kids[0], kids[1], phys.left_key, phys.right_key)
        if isinstance(phys, P.PSort):
            return Sort(kids[0], phys.keys, phys.ascending)
        if isinstance(phys, P.PTopN):
            return TopN(kids[0], phys.keys, phys.n, phys.ascending)
        if isinstance(phys, P.PLimit):
            return Limit(kids[0], phys.n)
        if isinstance(phys, P.PWindow):
            from repro.engine.window import Window
            return Window(kids[0], phys.partition_by, phys.order_by,
                          phys.functions, phys.ascending)
        if isinstance(phys, P.PUnionAll):
            from repro.engine.operators import UnionAll
            return UnionAll(kids)
        raise ExecutionError(f"cannot build operator for {phys!r}")

    def _vector_size(self) -> int:
        return self.cluster.config.vector_size

    # --------------------------------------------------------------- scans

    def _run_scan(self, phys: P.PScan) -> DistRel:
        table = self.cluster.tables[phys.table]
        per_node: Dict[str, List[Batch]] = {w: [] for w in self.cluster.workers}
        node_times: Dict[str, float] = {w: 0.0 for w in self.cluster.workers}
        if table.is_replicated:
            # every worker scans its cached copy; compute once
            t0 = _time.perf_counter()
            res = table.scan_partition(
                0, phys.columns, phys.skip_predicates,
                trans=self._table_trans(phys.table, 0),
                reader=self.cluster.workers[0],
                pool=self.cluster.pool_of(self.cluster.workers[0]),
            )
            dt = _time.perf_counter() - t0
            self._sim_seconds += dt
            return DistRel(P.REPLICATED, batch=Batch.from_columns(res.columns))
        for pid in range(table.n_partitions):
            node = self.cluster.responsible(phys.table, pid)
            t0 = _time.perf_counter()
            res = table.scan_partition(
                pid, phys.columns, phys.skip_predicates,
                trans=self._table_trans(phys.table, pid),
                reader=node, pool=self.cluster.pool_of(node),
            )
            node_times[node] += _time.perf_counter() - t0
            per_node.setdefault(node, []).append(
                Batch.from_columns(res.columns)
            )
        batches = {}
        template = None
        for node, parts in per_node.items():
            merged = concat_batches(parts)
            if merged.n or merged.columns:
                template = merged if merged.columns else template
            batches[node] = merged
        template = template or Batch(
            {c: np.empty(0) for c in phys.columns}, 0
        )
        for node in batches:
            if not batches[node].columns:
                batches[node] = Batch(
                    {k: v[:0] for k, v in template.columns.items()}, 0
                )
        self._sim_seconds += max(node_times.values()) if node_times else 0.0
        return DistRel(P.PARTITIONED, per_node=batches)

    def _table_trans(self, table_name: str, pid: int):
        """Resolve the Trans-PDT for one partition of the active txn."""
        if self._trans is None:
            return None
        return self._trans.trans_for(table_name, pid)

    # ------------------------------------------------------------ exchanges

    def _gather(self, rel: DistRel) -> DistRel:
        mpi = self.cluster.mpi
        master = self.cluster.session_master
        if rel.kind == P.MASTER:
            return rel
        if rel.kind == P.REPLICATED:
            return DistRel(P.MASTER, batch=rel.batch)
        pieces = []
        for node in self.cluster.workers:
            batch = rel.per_node[node]
            mpi.send(node, master, estimate_batch_bytes(batch))
            pieces.append(batch)
        merged = concat_batches(pieces)
        if not merged.columns and pieces:
            merged = pieces[0]
        return DistRel(P.MASTER, batch=merged)

    def _broadcast(self, rel: DistRel) -> DistRel:
        mpi = self.cluster.mpi
        workers = self.cluster.workers
        if rel.kind == P.REPLICATED:
            return rel
        if rel.kind == P.MASTER:
            size = estimate_batch_bytes(rel.batch)
            for w in workers:
                mpi.send(self.cluster.session_master, w, size)
            return DistRel(P.REPLICATED, batch=rel.batch)
        pieces = []
        for src in workers:
            batch = rel.per_node[src]
            size = estimate_batch_bytes(batch)
            for dst in workers:
                mpi.send(src, dst, size)
            pieces.append(batch)
        merged = concat_batches(pieces)
        if not merged.columns and pieces:
            merged = pieces[0]
        return DistRel(P.REPLICATED, batch=merged)

    def _hash_split(self, rel: DistRel, keys,
                    align_with: str = None) -> DistRel:
        mpi = self.cluster.mpi
        workers = self.cluster.workers

        if align_with is not None:
            # route with the aligned table's partition function and
            # responsibility map, so rows land with their join partners
            schema = self.cluster.tables[align_with].schema
            node_index = {w: i for i, w in enumerate(workers)}

            def destinations(batch: Batch) -> np.ndarray:
                pids = schema.partition_ids(
                    [batch.columns[k] for k in keys]
                )
                out = np.empty(batch.n, dtype=np.int64)
                for pid in np.unique(pids):
                    node = self.cluster.responsible(align_with, int(pid))
                    out[pids == pid] = node_index[node]
                return out
        else:
            def destinations(batch: Batch) -> np.ndarray:
                return _hash_to_streams(batch, keys, workers)
        incoming: Dict[str, List[Batch]] = {w: [] for w in workers}
        sources: List[Tuple[str, Batch]] = []
        if rel.kind == P.PARTITIONED:
            sources = [(w, rel.per_node[w]) for w in workers]
        elif rel.kind == P.MASTER:
            sources = [(self.cluster.session_master, rel.batch)]
        else:  # replicated: split the copy held by the first worker
            sources = [(workers[0], rel.batch)]
        template: Optional[Batch] = None
        for src, batch in sources:
            if batch.columns and template is None:
                template = batch
            if batch.n == 0:
                continue
            dest = destinations(batch)
            for i, dst in enumerate(workers):
                mask = dest == i
                if not mask.any():
                    continue
                piece = batch.select(mask)
                mpi.send(src, dst, estimate_batch_bytes(piece))
                incoming[dst].append(piece)
        out: Dict[str, Batch] = {}
        for w in workers:
            merged = concat_batches(incoming[w])
            if not merged.columns and template is not None:
                merged = Batch(
                    {k: v[:0] for k, v in template.columns.items()}, 0
                )
            out[w] = merged
        return DistRel(P.PARTITIONED, per_node=out)
