"""Executes distributed physical plans over the simulated cluster.

Streaming execution core: the whole physical plan -- including exchange
nodes -- is composed into *one* operator tree per consuming stream.
Exchange boundaries are crossed by :class:`~repro.engine.exchange.Exchange`
operator pairs (sender/receiver) that push batch bytes through per-link
:class:`~repro.net.mpi.DXchgChannel` buffers, flushing whole MPI messages
as the buffers fill; nothing is materialized between fragments.  A
:class:`~repro.engine.exchange.StreamScheduler` advances the sender
fragments round-robin, one vector at a time, and charges simulated time
for the slowest stream of each round -- the behaviour of a cluster whose
streams run concurrently.

Reported timings: ``elapsed`` is real single-process wall time;
``simulated_parallel_seconds`` is the scheduler's round-based clock.
``peak_node_memory`` is measured per node from live DXchg buffer
occupancy, receive queues, scan buffers and pipeline-breaker operator
state (hash builds, sort buffers) -- not derived from the ``2*N*C``
formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time as _time
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ExecutionError
from repro.engine.batch import (
    Batch,
    batch_bytes,
    batches_from_columns,
    concat_batches,
)
from repro.engine.exchange import (
    DONE,
    Exchange,
    MemoryMeter,
    STREAMING,
    StreamScheduler,
)
from repro.engine.operators import (
    HashAggr,
    HashJoin,
    Limit,
    MergeJoin,
    Operator,
    Project,
    Select,
    Sort,
    TopN,
)
from repro.engine.profile import ProfileNode, format_profile
from repro.mpp import plan as P
from repro.obs import NULL_TRACER, Span, span_from_profile

MASTER_STREAM = "__master__"

#: serialized batch size estimate (kept as an alias for older callers)
estimate_batch_bytes = batch_bytes


def _table_of(cluster, name: str):
    """Catalog lookup honouring vh$ system tables when available."""
    lookup = getattr(cluster, "table", None)
    if callable(lookup):
        return lookup(name)
    return cluster.tables[name]


@dataclass
class QueryResult:
    batch: Batch
    elapsed: float
    simulated_parallel_seconds: float
    network_bytes: int
    network_messages: int
    bytes_read: int
    profiles: List[ProfileNode] = field(default_factory=list)
    plan_text: str = ""
    #: measured peak resident bytes per node (operator state + DXchg
    #: buffers + receive queues), from the run's MemoryMeter
    peak_node_memory: Dict[str, int] = field(default_factory=dict)
    #: per-exchange statistics dicts (label, bytes, messages, tuples,
    #: peak_buffered_bytes, peak_queued_bytes, buffer_capacity_bytes)
    exchanges: List[Dict[str, object]] = field(default_factory=list)
    #: lifecycle span tree (set when the query ran with ``trace=True``)
    trace: Optional[Span] = None
    #: scheduler rounds this query's root stream took to drain
    rounds: int = 0
    #: mid-query re-plans the adaptive ExecutionStrategy performed
    replans: int = 0
    #: workload-manager id (None for direct executor calls)
    query_id: Optional[int] = None
    #: simulated seconds spent waiting in the admission queue
    wait_sim_seconds: float = 0.0

    def format_profile(self) -> str:
        return "\n".join(format_profile(p) for p in self.profiles)

    def simulated_total_seconds(self,
                                network_bandwidth: float = 1.25e9) -> float:
        """Compute time (slowest stream per round) plus network time at
        the given per-link bandwidth (default: 10Gb Ethernet, the paper's
        cluster)."""
        return (self.simulated_parallel_seconds
                + self.network_bytes / network_bandwidth)

    @property
    def peak_memory_bytes(self) -> int:
        """Largest per-node peak across the cluster."""
        return max(self.peak_node_memory.values(), default=0)

    @property
    def dxchg_peak_buffered_bytes(self) -> int:
        """Peak bytes held in sender channel buffers, summed per exchange.

        This is the measured counterpart of the paper's DXchg
        buffer-memory formula: it depends on message size and fanout,
        not on the exchanged data volume.
        """
        return sum(int(ex["peak_buffered_bytes"]) for ex in self.exchanges)

    @property
    def dxchg_peak_queued_bytes(self) -> int:
        """Peak bytes parked in receive queues, summed per exchange.

        Schedule-dependent: the streaming pump keeps queues about one
        round deep, while stop-and-go materialization parks each
        fragment's entire output here before the consumer starts.
        """
        return sum(int(ex["peak_queued_bytes"]) for ex in self.exchanges)

    @property
    def exchange_messages(self) -> int:
        return sum(int(ex["messages"]) for ex in self.exchanges)


def _hash_to_streams(batch: Batch, keys, workers: List[str]) -> np.ndarray:
    """Generic DXchg hash: Knuth-mixed so it scatters independently of any
    table's partition function (aligned routing goes through the table's
    own partition_ids instead)."""
    h = np.zeros(batch.n, dtype=np.int64)
    for key in keys:
        col = batch.columns[key]
        if col.dtype.kind in "OUS":  # object / unicode / bytes
            hashed = np.fromiter((hash(v) for v in col), np.int64, batch.n)
        else:
            hashed = col.astype(np.int64)
        h = ((h + hashed) * 2654435761) & 0x7FFFFFFF
    return h % len(workers)


class _RunContext:
    """Per-``execute()`` state.

    Everything the old executor kept on ``self`` (and memoized by
    ``id(phys)``, which can alias across runs after GC) lives here for
    exactly one execution, keyed on the plan node *objects* -- the plan
    root keeps them alive for the duration, so no id reuse is possible.
    """

    def __init__(self, trans, mode: str, n_lanes: int, vector_size: int,
                 clock=None, scheduler: Optional[StreamScheduler] = None,
                 meter: Optional[MemoryMeter] = None,
                 workers: Optional[List[str]] = None,
                 session_master: Optional[str] = None):
        self.trans = trans
        self.mode = mode
        self.n_lanes = n_lanes
        self.vector_size = vector_size
        #: worker set and master *snapshotted at prepare time*: a
        #: failover may reshape the cluster while this run is suspended,
        #: and a half-built run mixing old and new worker lists would be
        #: internally inconsistent. The workload manager unwinds and
        #: re-prepares affected runs; this snapshot makes the hazard
        #: impossible even for runs it misses.
        self.workers: List[str] = list(workers or [])
        self.session_master: Optional[str] = session_master
        #: private per-query scheduler by default; the workload manager
        #: injects its shared cluster-wide scheduler instead
        self.scheduler = scheduler or StreamScheduler(clock)
        self.meter = meter or MemoryMeter()
        self.exchanges: Dict[P.PhysNode, Exchange] = {}
        self.exchange_order: List[Exchange] = []
        self.replays: Dict[P.PhysNode, "_SharedReplay"] = {}
        self.replay_order: List["_SharedReplay"] = []


class StreamingScan(Operator):
    """Leaf: scans this stream's partitions lazily, one at a time, and
    slices them into engine vectors -- the scan is part of the pipeline,
    not a pre-materialized island."""

    def __init__(self, cluster, phys: P.PScan, node: str, ctx: _RunContext):
        super().__init__(())
        self.cluster = cluster
        self.phys = phys
        self.node = node
        self.ctx = ctx

    def describe(self):
        return self.phys.describe()

    def _typed_empty(self) -> Batch:
        """Zero-row batch with engine dtypes (decimals scan as float64)."""
        table = _table_of(self.cluster, self.phys.table)
        cols = {}
        for name in self.phys.columns:
            if table._decimal_scale(name) is not None:
                dtype = np.dtype(np.float64)
            else:
                dtype = table.schema.ctype(name).dtype
            cols[name] = np.empty(0, dtype=dtype)
        return Batch(cols, 0)

    def _run(self):
        cluster = self.cluster
        phys = self.phys
        table = _table_of(cluster, phys.table)
        trans = self.ctx.trans
        virtual = getattr(table, "is_virtual", False)
        yielded = False
        for pid in range(table.n_partitions):
            if not virtual and \
                    cluster.responsible(phys.table, pid) != self.node:
                continue
            res = table.scan_partition(
                pid, phys.columns, phys.skip_predicates,
                trans=(trans.trans_for(phys.table, pid)
                       if trans and not virtual else None),
                reader=self.node, pool=cluster.pool_of(self.node),
            )
            held = batch_bytes(Batch.from_columns(res.columns))
            if self.memory_meter is not None and held:
                self.memory_meter.hold(self.memory_node, held)
            try:
                for b in batches_from_columns(res.columns,
                                              self.ctx.vector_size):
                    yielded = yielded or bool(b.columns)
                    yield b
            finally:
                if self.memory_meter is not None and held:
                    self.memory_meter.release(self.memory_node, held)
        if not yielded:
            # this node owns no partitions (or none produced columns):
            # the schema must still flow downstream
            yield self._typed_empty()


class _SharedReplay:
    """Compute a replicated subtree once (on its home stream) and replay
    the recorded vectors to every consuming stream -- replicated inputs
    are identical everywhere, so only one stream pays the compute and IO,
    exactly like the old compute-once fragment rule."""

    def __init__(self, op: Operator, scheduler: StreamScheduler):
        self.op = op
        self.scheduler = scheduler
        self.batches: Optional[List[Batch]] = None
        self.sources: List["ReplaySource"] = []

    def materialize(self) -> List[Batch]:
        if self.batches is None:
            recorded: List[Batch] = []
            iterator = self.op.execute()
            while True:
                item, dt = self.scheduler.advance(iterator)
                self.scheduler.charge_round([dt])
                if item is DONE:
                    break
                recorded.append(item)
            self.batches = recorded
        return self.batches


class ReplaySource(Operator):
    """One consuming stream's view of a :class:`_SharedReplay`."""

    def __init__(self, shared: _SharedReplay, label: str):
        super().__init__(())
        self.shared = shared
        self.label = label
        shared.sources.append(self)

    def describe(self):
        return self.label

    def _run(self):
        for batch in self.shared.materialize():
            yield batch


class QueryRun:
    """A prepared query that can be suspended and resumed between rounds.

    :meth:`MppExecutor.prepare` builds the operator tree and returns one
    of these; each :meth:`step` pulls exactly one item from the root
    stream through the scheduler (one round), so a workload manager can
    interleave many live queries on one shared scheduler. Network, IO
    and wall deltas are snapshotted around every step -- execution is
    single-threaded, so the attribution is exact even when queries from
    different sessions interleave on the same fabric.
    """

    def __init__(self, executor: "MppExecutor", root: P.PhysNode,
                 op: Operator, ctx: _RunContext, build_wall: float):
        self.executor = executor
        self.cluster = executor.cluster
        self.root = root
        self.op = op
        self.ctx = ctx
        self.batches: List[Batch] = []
        self.rounds = 0
        self.done = False
        self.cancelled = False
        self.build_wall = build_wall
        self.step_wall = 0.0
        self.flush_wall = 0.0
        self.network_bytes = 0
        self.network_messages = 0
        self.bytes_read = 0
        #: shared-scheduler position at prepare; latency = clock - this
        self.sim_start = ctx.scheduler.sim_seconds
        self._iterator = None
        self._result: Optional[QueryResult] = None

    # -- accounting helpers --------------------------------------------------

    def _io_snapshot(self):
        mpi = self.cluster.mpi
        return (mpi.total_bytes, mpi.total_messages,
                self.cluster.hdfs.total_bytes_read())

    def _io_charge(self, before) -> None:
        mpi = self.cluster.mpi
        self.network_bytes += mpi.total_bytes - before[0]
        self.network_messages += mpi.total_messages - before[1]
        self.bytes_read += self.cluster.hdfs.total_bytes_read() - before[2]

    # -- lifecycle -----------------------------------------------------------

    def step(self) -> bool:
        """Advance the root stream by one scheduler round.

        Returns True while the query has more work (another step will
        make progress); False once the root stream is drained.
        """
        if self.done or self.cancelled:
            return False
        before = self._io_snapshot()
        t0 = _time.perf_counter()
        if self._iterator is None:
            self._iterator = self.op.execute()
        try:
            item, dt = self.ctx.scheduler.advance(self._iterator)
            self.ctx.scheduler.charge_round([dt])
        finally:
            # a ReplanSignal aborts the pull mid-round: still account the
            # round, the wall time and the IO it caused before unwinding
            self.rounds += 1
            self.step_wall += _time.perf_counter() - t0
            self._io_charge(before)
        if item is DONE:
            self.done = True
            return False
        self.batches.append(item)
        return True

    def finish(self) -> QueryResult:
        """Flush exchanges, assemble profiles and build the result."""
        if self._result is not None:
            return self._result
        before = self._io_snapshot()
        t0 = _time.perf_counter()
        # a Limit/TopN root may abandon receivers mid-stream: close
        # remaining channels so partial buffers are flushed/accounted,
        # then give back any bytes still parked in receive queues
        for ex in self.ctx.exchange_order:
            ex._finish()
            ex.drain_queues()
        self.flush_wall = _time.perf_counter() - t0
        self._io_charge(before)
        profiles = self.executor._assemble_profiles(self.op, self.ctx)
        self.executor._record_metrics(self.ctx)
        self._result = QueryResult(
            batch=concat_batches(self.batches),
            elapsed=self.build_wall + self.step_wall + self.flush_wall,
            simulated_parallel_seconds=(
                self.ctx.scheduler.sim_seconds - self.sim_start),
            network_bytes=self.network_bytes,
            network_messages=self.network_messages,
            bytes_read=self.bytes_read,
            profiles=profiles,
            plan_text=self.root.pretty(),
            peak_node_memory=self.ctx.meter.peak_by_node(),
            exchanges=[ex.stats() for ex in self.ctx.exchange_order],
            rounds=self.rounds,
        )
        profiler = getattr(self.cluster, "profiler", None)
        if profiler is not None:
            profiler.observe_query(self._result)
        self.ctx.meter.detach()
        return self._result

    def cancel(self) -> None:
        """Unwind a suspended query: close its generators (releasing scan
        holds via their ``finally`` blocks), drop buffered channel bytes
        without flushing them to the fabric, drain receive queues, and
        give residual operator-state bytes back to any parent meter."""
        if self.cancelled or self._result is not None:
            return
        self.cancelled = True
        self.done = True
        if self._iterator is not None:
            self._iterator.close()
        for ex in self.ctx.exchange_order:
            for state in ex.senders:
                if state.iterator is not None:
                    state.iterator.close()
            ex.abandon()
        self.ctx.meter.detach()


class MppExecutor:
    """Runs physical plans against a VectorH cluster object."""

    def __init__(self, cluster):
        self.cluster = cluster

    # ------------------------------------------------------------------ public

    def prepare(self, plan, trans=None,
                exchange_mode: str = STREAMING,
                thread_to_node: bool = True,
                scheduler: Optional[StreamScheduler] = None,
                meter: Optional[MemoryMeter] = None,
                query_id: Optional[int] = None):
        """Build the runner for a plan without driving it.

        ``plan`` may be a bare physical tree (returns a plain
        :class:`QueryRun`), a :class:`~repro.mpp.strategy.QueryPlan`
        (wrapped in a fresh adaptive ExecutionStrategy), or an
        :class:`~repro.mpp.strategy.ExecutionStrategy` itself. Pass
        ``scheduler``/``meter`` to run on a shared cluster-wide scheduler
        and roll memory accounting up into a shared meter (the workload
        manager's concurrency path); by default each run gets private
        ones, which preserves the old single-query behaviour exactly.
        """
        if not isinstance(plan, P.PhysNode):
            from repro.mpp.strategy import ExecutionStrategy, QueryPlan
            if isinstance(plan, QueryPlan):
                strategy = ExecutionStrategy(self.cluster, plan)
            elif isinstance(plan, ExecutionStrategy):
                strategy = plan
            else:
                raise ExecutionError(
                    f"cannot prepare {type(plan).__name__}: expected a "
                    "PhysNode, QueryPlan or ExecutionStrategy")
            return strategy.prepare(
                self, trans=trans, exchange_mode=exchange_mode,
                thread_to_node=thread_to_node, scheduler=scheduler,
                meter=meter, query_id=query_id)
        return self._prepare_tree(plan, trans=trans,
                                  exchange_mode=exchange_mode,
                                  thread_to_node=thread_to_node,
                                  scheduler=scheduler, meter=meter)

    def _prepare_tree(self, root: P.PhysNode, trans=None,
                      exchange_mode: str = STREAMING,
                      thread_to_node: bool = True,
                      scheduler: Optional[StreamScheduler] = None,
                      meter: Optional[MemoryMeter] = None) -> QueryRun:
        """Build the operator tree for one physical plan attempt."""
        cluster = self.cluster
        ctx = _RunContext(
            trans=trans, mode=exchange_mode,
            n_lanes=1 if thread_to_node else cluster.config.cores_per_node,
            vector_size=cluster.config.vector_size,
            clock=getattr(cluster, "sim_clock", None),
            scheduler=scheduler, meter=meter,
            workers=cluster.workers,
            session_master=cluster.session_master,
        )
        t0 = _time.perf_counter()
        top = root
        if top.distribution.kind == P.PARTITIONED:
            # final gather at the session master (normally the
            # rewriter inserts this; raw plans get it implicitly)
            top = P.DXUnion(top)
        op = self._build_op(top, MASTER_STREAM, ctx)
        return QueryRun(self, root, op, ctx,
                        build_wall=_time.perf_counter() - t0)

    def execute(self, plan, trans=None,
                exchange_mode: str = STREAMING,
                thread_to_node: bool = True) -> QueryResult:
        """Prepare a plan (physical tree or QueryPlan) and drive it to
        completion.

        ``exchange_mode`` selects how exchange sender fragments are
        scheduled: ``"streaming"`` (default) advances them round-robin one
        vector at a time through the DXchg channels; ``"materialize"``
        drains each sender completely before consumers start -- the
        stop-and-go baseline, with identical per-link bytes/messages.
        ``thread_to_node`` picks the DXchg buffering granularity (paper
        section 5): one open buffer per destination node, or one per
        destination *core* (``n_lanes = cores_per_node``).
        """
        tracer = getattr(self.cluster, "tracer", None) or NULL_TRACER
        with tracer.span("execute", mode=exchange_mode) as exec_span:
            with tracer.span("build"):
                run = self.prepare(plan, trans=trans,
                                   exchange_mode=exchange_mode,
                                   thread_to_node=thread_to_node)
            with tracer.span("schedule"):
                while run.step():
                    pass
            with tracer.span("exchange.flush",
                             exchanges=len(run.ctx.exchange_order)):
                result = run.finish()
        # the trace subsumes format_profile: per-stream operator work and
        # exchange send/recv appear as spans under the execute span
        for prof in result.profiles:
            span_from_profile(prof, exec_span)
        return result

    def _record_metrics(self, ctx: "_RunContext") -> None:
        """Charge per-node stream times and peak memory to the registry."""
        registry = getattr(self.cluster, "registry", None)
        if registry is None:
            return
        registry.counter(
            "executor_queries_total", "Physical plans executed"
        ).inc()
        peaks = registry.gauge(
            "executor_peak_memory_bytes",
            "High-water mark of measured per-node resident bytes",
            labels=("node",),
        )
        for node, peak in ctx.meter.peak_by_node().items():
            peaks.set_max(peak, node=node)
        streams = registry.histogram(
            "executor_stream_seconds",
            "Wall seconds each sender stream spent per exchange fragment",
            labels=("node",),
        )
        for ex in ctx.exchange_order:
            for state in ex.senders:
                prof = state.op.profile
                if prof is not None:
                    streams.observe(prof.cum_time,
                                    node=self._node_of(state.stream, ctx))

    # ---------------------------------------------------------------- streams

    def _node_of(self, stream: str, ctx: _RunContext) -> str:
        if stream == MASTER_STREAM:
            return ctx.session_master or self.cluster.session_master
        return stream

    def _source_streams(self, child: P.PhysNode,
                        ctx: _RunContext) -> List[str]:
        """Which streams feed an exchange, from the child's distribution:
        a master-side child sends from the master stream, a replicated
        child from one representative worker, a partitioned child from
        every worker (the run's prepare-time snapshot of the set)."""
        kind = child.distribution.kind
        if kind == P.MASTER:
            return [MASTER_STREAM]
        if kind == P.REPLICATED:
            return [ctx.workers[0]]
        return list(ctx.workers)

    def _meter(self, op: Operator, stream: str, ctx: _RunContext) -> None:
        op.memory_meter = ctx.meter
        op.memory_node = self._node_of(stream, ctx)

    # ------------------------------------------------------------------ build

    def _build_op(self, phys: P.PhysNode, stream: str, ctx: _RunContext,
                  share_ok: bool = True) -> Operator:
        """Compose the engine operator tree for one consuming stream.

        Exchange plan nodes become receiver operators wired to a shared
        :class:`Exchange`; replicated subtrees become shared replays.
        """
        if (share_ok and phys.distribution.kind == P.REPLICATED
                and not isinstance(phys, P.DXBroadcast)):
            shared = ctx.replays.get(phys)
            if shared is None:
                home = ctx.workers[0]
                real = self._build_op(phys, home, ctx, share_ok=False)
                shared = _SharedReplay(real, ctx.scheduler)
                ctx.replays[phys] = shared
                ctx.replay_order.append(shared)
            src = ReplaySource(shared, phys.describe())
            self._meter(src, stream, ctx)
            return src

        if isinstance(phys, P.DXUnion):
            child = phys.children[0]
            if child.distribution.kind in (P.MASTER, P.REPLICATED):
                # already a single logical copy: the gather is free
                return self._build_op(child, stream, ctx, share_ok)
            return self._exchange_receiver(phys, stream, ctx)
        if isinstance(phys, P.DXBroadcast):
            child = phys.children[0]
            if child.distribution.kind == P.REPLICATED:
                return self._build_op(child, stream, ctx, share_ok)
            return self._exchange_receiver(phys, stream, ctx)
        if isinstance(phys, P.DXHashSplit):
            return self._exchange_receiver(phys, stream, ctx)

        if isinstance(phys, P.PScan):
            op = StreamingScan(self.cluster, phys,
                               self._node_of(stream, ctx), ctx)
            self._meter(op, stream, ctx)
            return op

        kids = [self._build_op(c, stream, ctx, share_ok)
                for c in phys.children]
        if isinstance(phys, P.PSelect):
            op = Select(kids[0], phys.predicate)
        elif isinstance(phys, P.PProject):
            op = Project(kids[0], phys.outputs)
        elif isinstance(phys, P.PAggr):
            op = HashAggr(kids[0], phys.group_by, phys.aggregates)
        elif isinstance(phys, P.PHashJoin):
            op = HashJoin(kids[0], kids[1], phys.build_keys,
                          phys.probe_keys, phys.how, phys.build_payload)
        elif isinstance(phys, P.PMergeJoin):
            op = MergeJoin(kids[0], kids[1], phys.left_key, phys.right_key)
        elif isinstance(phys, P.PSort):
            op = Sort(kids[0], phys.keys, phys.ascending)
        elif isinstance(phys, P.PTopN):
            op = TopN(kids[0], phys.keys, phys.n, phys.ascending)
        elif isinstance(phys, P.PLimit):
            op = Limit(kids[0], phys.n)
        elif isinstance(phys, P.PWindow):
            from repro.engine.window import Window
            op = Window(kids[0], phys.partition_by, phys.order_by,
                        phys.functions, phys.ascending)
        elif isinstance(phys, P.PUnionAll):
            from repro.engine.operators import UnionAll
            op = UnionAll(kids)
        else:
            raise ExecutionError(f"cannot build operator for {phys!r}")
        self._meter(op, stream, ctx)
        return op

    # -------------------------------------------------------------- exchanges

    def _exchange_receiver(self, phys: P.PhysNode, stream: str,
                           ctx: _RunContext) -> Operator:
        ex = ctx.exchanges.get(phys)
        if ex is None:
            ex = self._make_exchange(phys, ctx)
            ctx.exchanges[phys] = ex
            ctx.exchange_order.append(ex)
            child = phys.children[0]
            for src_stream in self._source_streams(child, ctx):
                child_op = self._build_op(child, src_stream, ctx,
                                          share_ok=True)
                sender = ex.add_sender(src_stream, child_op)
                self._meter(sender, src_stream, ctx)
        receiver = ex.attach_receiver(stream)
        self._meter(receiver, stream, ctx)
        return receiver

    def _make_exchange(self, phys: P.PhysNode, ctx: _RunContext) -> Exchange:
        workers = list(ctx.workers)
        if isinstance(phys, P.DXUnion):
            dests = [MASTER_STREAM]

            def route(src, batch):
                return [(MASTER_STREAM, batch)]
        elif isinstance(phys, P.DXBroadcast):
            dests = workers

            def route(src, batch):
                return [(w, batch) for w in workers]
        elif isinstance(phys, P.DXHashSplit):
            dests = workers
            destinations = self._split_destinations(phys, workers)

            def route(src, batch):
                dest = destinations(batch)
                pieces = []
                for i, w in enumerate(workers):
                    mask = dest == i
                    if mask.any():
                        pieces.append((w, batch.select(mask)))
                return pieces
        else:
            raise ExecutionError(f"not an exchange: {phys!r}")
        return Exchange(
            phys.describe(), self.cluster.mpi, route, dests,
            lambda stream: self._node_of(stream, ctx),
            ctx.scheduler, meter=ctx.meter,
            mode=ctx.mode, n_lanes=ctx.n_lanes,
            registry=getattr(self.cluster, "registry", None),
        )

    def _split_destinations(self, phys: P.DXHashSplit, workers: List[str]):
        keys = phys.keys
        if phys.align_with is not None:
            # route with the aligned table's partition function and
            # responsibility map, so rows land with their join partners
            schema = _table_of(self.cluster, phys.align_with).schema
            node_index = {w: i for i, w in enumerate(workers)}
            align_with = phys.align_with

            def destinations(batch: Batch) -> np.ndarray:
                pids = schema.partition_ids([batch.columns[k] for k in keys])
                out = np.empty(batch.n, dtype=np.int64)
                for pid in np.unique(pids):
                    node = self.cluster.responsible(align_with, int(pid))
                    out[pids == pid] = node_index[node]
                return out
        else:
            def destinations(batch: Batch) -> np.ndarray:
                return _hash_to_streams(batch, keys, workers)
        return destinations

    # --------------------------------------------------------------- profiles

    def _assemble_profiles(self, root_op: Operator,
                           ctx: _RunContext) -> List[ProfileNode]:
        """One spanning profile tree: fold every exchange's per-stream
        sender profiles into one node and graft it under the exchange's
        receiver; graft shared replicated subtrees under their first
        replay source. Exchanges are processed outer-first (creation
        order), so inner grafts land inside already-merged trees."""
        orphans: List[ProfileNode] = []
        for ex in ctx.exchange_order:
            merged = ex.merged_sender_profile()
            if merged is None:
                continue
            anchor = next(
                (r.profile for r in ex.receivers.values()
                 if r.profile is not None), None,
            )
            if anchor is not None:
                anchor.children.append(merged)
                anchor.tuples_in = merged.tuples_out
            else:
                orphans.append(merged)
        for shared in ctx.replay_order:
            prof = shared.op.profile
            if prof is None:
                continue
            anchor = next(
                (s.profile for s in shared.sources
                 if s.profile is not None), None,
            )
            if anchor is not None:
                anchor.children.append(prof)
                anchor.tuples_in = prof.tuples_out
            else:
                orphans.append(prof)
        profiles: List[ProfileNode] = []
        if root_op.profile is not None:
            profiles.append(root_op.profile)
        profiles.extend(orphans)
        return profiles
