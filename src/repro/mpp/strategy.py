"""The plan/runner split: QueryPlan (built once) vs ExecutionStrategy.

Mirrors the Snuba ``QueryPlan`` / ``QueryPlanExecutionStrategy``
architecture: planning produces an immutable :class:`QueryPlan` -- the
physical tree plus per-node cardinality annotations and the exchange
decisions the cost model took -- while a per-execution
:class:`ExecutionStrategy` owns dispatch and *can change its mind
mid-query*.

Adaptivity protocol
-------------------
Every broadcast-vs-repartition decision the rewriter records names the
exchange node that moves the build side. The strategy installs a watcher
on that exchange: ``Exchange.pump`` calls it after every sender round
with live ``tuples_in``. When the observed cardinality is off from the
estimate by ``config.replan_qerror_threshold`` (default 10x) *and* the
cost comparison now flips the other way, the watcher raises
:class:`ReplanSignal` straight through the operator generator stack. The
:class:`AdaptiveRun` catches it, feeds the observation into the
:class:`~repro.mpp.feedback.CardinalityFeedbackStore`, cancels the inner
run (generators closed, channel buffers dropped, memory released),
re-invokes the rewriter -- which now sees the corrected cardinality --
and restarts under the *same* pinned snapshot, admission slot, shared
scheduler and parent memory meter. Restarting discards the old root
batches, so results are exactly the batches of the final plan: no
partial-output stitching, no duplicates. All accounting (rounds, wall
time, simulated time, network, peak memory, exchange stats) accumulates
across attempts.

A broadcast decision can flip as soon as its lower-bound actual already
loses to repartition (mid-stream: ``tuples_in`` only grows, so the
trigger is certain). A repartition decision is only judged once its
senders finished -- a partial count cannot prove broadcast would have
been cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.exchange import MemoryMeter
from repro.mpp import plan as P
from repro.mpp.feedback import collect_actuals


@dataclass
class NodeEstimate:
    """Planner annotation for one physical node's output cardinality."""

    signature: Optional[str]
    rows: float
    source: str  # "static" | "feedback"


@dataclass
class ExchangeDecision:
    """One cost-based build-movement choice, with enough context to
    re-evaluate it against live cardinalities mid-query."""

    node: P.PhysNode  # the DXchg that moves the build side
    signature: Optional[str]  # fragment signature of the build subtree
    choice: str  # "broadcast" | "repartition"
    estimated: float  # estimated build rows at plan time
    probe_move_rows: float  # rows the alternative reshuffle moves extra
    n_workers: int


@dataclass
class QueryPlan:
    """A planned query: physical tree + cardinality/cost annotations.

    Built once by :meth:`ParallelRewriter.plan`; consumed by an
    :class:`ExecutionStrategy` (the workload manager and
    ``MppExecutor.prepare`` accept it directly).
    """

    logical: object
    root: P.PhysNode
    annotations: Dict[P.PhysNode, NodeEstimate] = field(default_factory=dict)
    decisions: List[ExchangeDecision] = field(default_factory=list)
    flags: object = None

    def pretty(self) -> str:
        """Plan rendering with per-node estimates (``(fb)`` marks
        feedback-backed numbers) -- what EXPLAIN prints."""
        lines: List[str] = []

        def emit(node: P.PhysNode, indent: int) -> None:
            pad = "  " * indent
            dist = node.distribution
            head = (f"{pad}{node.describe()}  <{dist.kind}"
                    + (f" on {','.join(dist.keys)}" if dist.keys else "")
                    + ">")
            ann = self.annotations.get(node)
            if ann is not None:
                head += f"  est={ann.rows:.0f}"
                if ann.source == "feedback":
                    head += "(fb)"
            lines.append(head)
            for child in node.children:
                emit(child, indent + 1)

        emit(self.root, 0)
        return "\n".join(lines)


class ReplanSignal(Exception):
    """Raised by an exchange watcher through the generator stack when a
    mid-query cost flip is certain; caught by :meth:`AdaptiveRun.step`."""

    def __init__(self, decision: ExchangeDecision, actual: float):
        super().__init__(
            f"{decision.choice} build observed {actual:.0f} rows "
            f"vs {decision.estimated:.0f} estimated")
        self.decision = decision
        self.actual = actual


class ExecutionStrategy:
    """Owns dispatch of one QueryPlan; can re-plan the query mid-flight."""

    def __init__(self, cluster, qplan: QueryPlan):
        self.cluster = cluster
        self.qplan = qplan

    def prepare(self, executor, trans=None, exchange_mode: str = "streaming",
                thread_to_node: bool = True, scheduler=None, meter=None,
                query_id: Optional[int] = None) -> "AdaptiveRun":
        inner = executor._prepare_tree(
            self.qplan.root, trans=trans, exchange_mode=exchange_mode,
            thread_to_node=thread_to_node, scheduler=scheduler, meter=meter)
        return AdaptiveRun(
            self, executor, inner,
            prep_kwargs=dict(trans=trans, exchange_mode=exchange_mode,
                             thread_to_node=thread_to_node,
                             scheduler=scheduler),
            query_id=query_id)

    def replan(self) -> QueryPlan:
        """Re-invoke the rewriter on the logical plan; the feedback store
        now holds the observation that triggered the re-plan."""
        from repro.mpp.rewriter import ParallelRewriter
        return ParallelRewriter(self.cluster, self.qplan.flags).plan(
            self.qplan.logical)


class AdaptiveRun:
    """A QueryRun wrapper that re-plans on cardinality misestimates.

    Duck-typed against :class:`~repro.mpp.executor.QueryRun` (step /
    finish / cancel / rounds / walls / ctx / root), so the executor and
    the workload manager drive it unchanged. Accounting accumulates
    across plan attempts; the result carries the *final* plan's batches
    and profiles plus ``replans``.
    """

    def __init__(self, strategy: ExecutionStrategy, executor, inner,
                 prep_kwargs: Dict[str, object],
                 query_id: Optional[int] = None):
        self.strategy = strategy
        self.executor = executor
        self.inner = inner
        self.query_id = query_id
        self._prep_kwargs = prep_kwargs
        config = strategy.cluster.config
        self.replan_enabled = bool(
            getattr(config, "adaptive_replan", True)
            and getattr(strategy.cluster, "feedback", None) is not None)
        self.threshold = float(
            getattr(config, "replan_qerror_threshold", 10.0))
        self.max_replans = int(getattr(config, "replan_max_per_query", 2))
        self.replans = 0
        #: the shared parent meter, captured before any cancel/detach
        #: nulls it -- replanned attempts chain fresh meters to it
        self._meter_parent = inner.ctx.meter.parent
        self.sim_start = inner.sim_start
        self._prior_rounds = 0
        self._prior_build = 0.0
        self._prior_step = 0.0
        self._prior_flush = 0.0
        self._prior_sim = 0.0
        self._prior_net = 0
        self._prior_msgs = 0
        self._prior_read = 0
        self._prior_peaks: Dict[str, int] = {}
        self._prior_exchanges: List[Dict[str, object]] = []
        self._result = None
        self._install_watchers(inner)

    # -- QueryRun interface (delegating / aggregating) ----------------------

    @property
    def done(self) -> bool:
        return self.inner.done

    @property
    def cancelled(self) -> bool:
        return self.inner.cancelled

    @property
    def rounds(self) -> int:
        return self._prior_rounds + self.inner.rounds

    @property
    def build_wall(self) -> float:
        return self._prior_build + self.inner.build_wall

    @property
    def step_wall(self) -> float:
        return self._prior_step + self.inner.step_wall

    @property
    def flush_wall(self) -> float:
        return self._prior_flush + self.inner.flush_wall

    @property
    def ctx(self):
        return self.inner.ctx

    @property
    def root(self) -> P.PhysNode:
        return self.inner.root

    def step(self) -> bool:
        try:
            return self.inner.step()
        except ReplanSignal as signal:
            self._execute_replan(signal)
            return True

    def cancel(self) -> None:
        self.inner.cancel()

    def finish(self):
        if self._result is not None:
            return self._result
        result = self.inner.finish()
        result.rounds = self.rounds
        result.replans = self.replans
        result.elapsed += (self._prior_build + self._prior_step
                           + self._prior_flush)
        result.simulated_parallel_seconds += self._prior_sim
        result.network_bytes += self._prior_net
        result.network_messages += self._prior_msgs
        result.bytes_read += self._prior_read
        for node, peak in self._prior_peaks.items():
            result.peak_node_memory[node] = max(
                result.peak_node_memory.get(node, 0), peak)
        result.exchanges = self._prior_exchanges + result.exchanges
        # what EXPLAIN ANALYZE should render: the plan that produced
        # the batches, with the annotations that predicted it
        result._final_root = self.strategy.qplan.root
        result._annotations = self.strategy.qplan.annotations
        self._harvest(result)
        self._result = result
        return result

    # -- adaptivity ----------------------------------------------------------

    def _install_watchers(self, run) -> None:
        for decision in self.strategy.qplan.decisions:
            exchange = run.ctx.exchanges.get(decision.node)
            if exchange is not None:
                exchange.watcher = self._make_watcher(decision)

    def _make_watcher(self, decision: ExchangeDecision):
        def watch(exchange) -> None:
            if not self.replan_enabled or self.replans >= self.max_replans:
                return
            actual = float(exchange.tuples_in)
            estimated = max(decision.estimated, 1.0)
            others = max(1, decision.n_workers - 1)
            if decision.choice == "broadcast":
                # tuples_in only grows, so a mid-stream flip is certain:
                # even the lower-bound actual already loses to reshuffle
                if actual < estimated * self.threshold:
                    return
                if actual * others > actual + decision.probe_move_rows:
                    raise ReplanSignal(decision, actual)
            else:  # repartition: judge only once the count is final
                if not exchange.senders_done:
                    return
                if actual * self.threshold > estimated:
                    return
                if actual * others < actual + decision.probe_move_rows:
                    raise ReplanSignal(decision, actual)

        return watch

    def _execute_replan(self, signal: ReplanSignal) -> None:
        cluster = self.strategy.cluster
        decision, actual = signal.decision, signal.actual
        store = getattr(cluster, "feedback", None)
        if store is not None and decision.signature:
            # a lower bound mid-stream, but already >= threshold x the
            # estimate -- enough to flip the decision; the final run's
            # harvest overwrites it with the exact count
            store.observe(decision.signature, decision.estimated, actual)
        inner = self.inner
        self._prior_rounds += inner.rounds
        self._prior_build += inner.build_wall
        self._prior_step += inner.step_wall
        self._prior_flush += inner.flush_wall
        self._prior_sim += inner.ctx.scheduler.sim_seconds - inner.sim_start
        self._prior_net += inner.network_bytes
        self._prior_msgs += inner.network_messages
        self._prior_read += inner.bytes_read
        inner.cancel()
        for node, peak in inner.ctx.meter.peak_by_node().items():
            self._prior_peaks[node] = max(
                self._prior_peaks.get(node, 0), peak)
        self._prior_exchanges.extend(
            ex.stats() for ex in inner.ctx.exchange_order)
        self.replans += 1
        registry = getattr(cluster, "registry", None)
        if registry is not None:
            registry.counter(
                "replans_total",
                "Mid-query re-plans triggered by cardinality misestimates",
            ).inc()
        events = getattr(cluster, "events", None)
        if events is not None:
            events.emit(
                "workload", "query.replan",
                query=self.query_id, choice=decision.choice,
                estimated=round(decision.estimated, 3),
                observed=int(actual),
                fragment=(decision.signature or "")[:120])
        self.strategy.qplan = self.strategy.replan()
        kwargs = dict(self._prep_kwargs)
        kwargs["meter"] = MemoryMeter(parent=self._meter_parent)
        self.inner = self.executor._prepare_tree(
            self.strategy.qplan.root, **kwargs)
        self._install_watchers(self.inner)

    def _harvest(self, result) -> None:
        """Feed the final plan's per-operator actuals into the store."""
        store = getattr(self.strategy.cluster, "feedback", None)
        if store is None or self.inner.cancelled:
            return
        qplan = self.strategy.qplan
        if any(isinstance(n, P.PLimit) for n in _walk(qplan.root)):
            # a Limit root abandons upstream operators mid-stream: their
            # tuples_out are truncation artifacts, not cardinalities
            return
        actuals = collect_actuals(qplan.root, result.profiles)
        for node, actual in actuals.items():
            ann = qplan.annotations.get(node)
            if ann is not None and ann.signature:
                store.observe(ann.signature, ann.rows, actual)


def _walk(node: P.PhysNode):
    yield node
    for child in node.children:
        yield from _walk(child)
