"""Cardinality feedback: plan-fragment signatures and the observed-rows store.

The Parallel Rewriter plans from static table statistics (stable row
counts times fixed selectivities), which is exactly how VectorH's
rewriter works -- and exactly why repeated misestimates repeat their
damage: a build side estimated at 50 rows is broadcast again on every
run even after the first run measured 50,000. This module closes the
loop the ROADMAP called out:

* :func:`fragment_signature` renders a *normalized* deterministic string
  for a logical subtree whose output cardinality is worth remembering
  (scans, selections, joins, aggregations). Projections are transparent
  (they never change cardinality), join sides are sorted for inner joins
  (so a build/probe swap still matches), and the binder's auto-generated
  ``__agg_in_N`` column names are canonicalized (each SQL execution mints
  fresh numbers for the same query text).
* :class:`CardinalityFeedbackStore` maps signatures to the last observed
  row count. ``lookup`` is what the rewriter consults *before* static
  stats; ``observe`` is fed automatically from per-operator actuals after
  every managed query (and every EXPLAIN ANALYZE).
* :func:`collect_actuals` pairs a physical plan's nodes with their
  executed profiles -- the same pre-order label-pairing idiom EXPLAIN
  ANALYZE's renderer uses, so the rows it harvests are the rows the
  annotated plan prints.

The store is deliberately last-write-wins with no decay: the simulation
is deterministic, so the most recent observation *is* the truth for the
current data, and keeping the policy trivial keeps warmed-store planning
bit-reproducible (the determinism acceptance test).
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mpp import logical as L
from repro.mpp import plan as P

#: the binder mints fresh ``__agg_in_<n>`` / ``col_<n>`` names per parse;
#: signatures canonicalize them so the same query text always matches
_AUTO_NAME = re.compile(r"__agg_in_\d+")


def _norm(text: str) -> str:
    return _AUTO_NAME.sub("__agg_in", text)


def fragment_signature(node: L.LogicalPlan) -> Optional[str]:
    """Deterministic signature of a logical subtree, or None when the
    fragment's cardinality is not worth remembering (sorts, limits,
    windows: they either preserve or truncate their input)."""
    if isinstance(node, L.LScan):
        preds = ",".join(f"{c}{op}{v!r}" for c, op, v in node.skip_predicates)
        return f"scan({node.table};{preds})"
    if isinstance(node, L.LSelect):
        child = fragment_signature(node.child)
        if child is None:
            return None
        return f"select({_norm(repr(node.predicate))})|{child}"
    if isinstance(node, L.LProject):
        # projections never change cardinality: transparent
        return fragment_signature(node.child)
    if isinstance(node, L.LJoin):
        build = fragment_signature(node.build)
        probe = fragment_signature(node.probe)
        if build is None or probe is None:
            return None
        bs = f"{build}#{','.join(node.build_keys)}"
        ps = f"{probe}#{','.join(node.probe_keys)}"
        # inner joins are symmetric: sort the sides so the cost-based
        # build/probe swap still hits the same entry
        sides = sorted((bs, ps)) if node.how == "inner" else [bs, ps]
        return f"join({node.how};{sides[0]}|{sides[1]})"
    if isinstance(node, L.LAggr):
        child = fragment_signature(node.child)
        if child is None:
            return None
        funcs = ",".join(f"{func}({_norm(repr(expr))})"
                         for _name, func, expr in node.aggregates)
        return f"aggr({','.join(node.group_by)};{funcs})|{child}"
    return None


@dataclass
class FeedbackEntry:
    """One remembered fragment: what we guessed, what we measured."""

    signature: str
    estimated: float
    observed: float
    hits: int = 0
    updated: float = 0.0  # sim seconds of the last observe


class CardinalityFeedbackStore:
    """Signature -> observed-rows memory shared by all plans of a cluster.

    ``lookup`` counts hits (and the ``plan_feedback_hits_total`` counter)
    so the ``vh$plan_feedback`` system table shows which fragments
    actually steer plans; ``observe`` is last-write-wins and stamps the
    simulated clock.
    """

    def __init__(self, registry=None, sim_clock=None):
        self.entries: Dict[str, FeedbackEntry] = {}
        self.sim_clock = sim_clock
        self._hits = None
        if registry is not None:
            self._hits = registry.counter(
                "plan_feedback_hits_total",
                "Rewriter cardinality estimates answered from feedback")

    def __len__(self) -> int:
        return len(self.entries)

    def _now(self) -> float:
        return self.sim_clock.seconds if self.sim_clock is not None else 0.0

    def observe(self, signature: str, estimated: float,
                observed: float) -> None:
        entry = self.entries.get(signature)
        if entry is None:
            self.entries[signature] = FeedbackEntry(
                signature, float(estimated), float(observed),
                updated=self._now())
        else:
            entry.estimated = float(estimated)
            entry.observed = float(observed)
            entry.updated = self._now()

    def lookup(self, signature: str) -> Optional[float]:
        entry = self.entries.get(signature)
        if entry is None:
            return None
        entry.hits += 1
        if self._hits is not None:
            self._hits.inc()
        return entry.observed

    def snapshot(self) -> List[FeedbackEntry]:
        return [self.entries[k] for k in sorted(self.entries)]

    # ------------------------------------------------------- persistence

    def export_state(self) -> Dict[str, list]:
        """JSON-serializable dump of every entry (checkpoint format)."""
        return {"entries": [
            {"signature": e.signature, "estimated": e.estimated,
             "observed": e.observed, "hits": e.hits, "updated": e.updated}
            for e in self.snapshot()
        ]}

    def restore_state(self, state: Dict[str, list]) -> int:
        """Load a checkpoint produced by :meth:`export_state`.

        Entries merge last-write-wins over anything already present, so
        restoring into a warm store keeps the fresher local observations
        only when the checkpoint lacks them. Returns entries restored.
        """
        restored = 0
        for item in state.get("entries", []):
            signature = item["signature"]
            self.entries[signature] = FeedbackEntry(
                signature, float(item["estimated"]), float(item["observed"]),
                hits=int(item.get("hits", 0)),
                updated=float(item.get("updated", 0.0)))
            restored += 1
        return restored


# ---------------------------------------------------------------------------
# Harvesting actuals from executed plans
# ---------------------------------------------------------------------------

def flatten_profiles(profiles) -> Dict[str, deque]:
    """Pre-order label -> profile queues (the EXPLAIN ANALYZE pairing)."""
    by_label: Dict[str, deque] = {}

    def walk(prof):
        by_label.setdefault(prof.label, deque()).append(prof)
        for child in prof.children:
            walk(child)

    for prof in profiles:
        walk(prof)
    return by_label


def collect_actuals(phys_root: P.PhysNode, profiles) -> Dict[P.PhysNode, int]:
    """Map each physical plan node to its executed ``tuples_out``.

    Walks the plan pre-order popping from per-label profile queues --
    stream-merged profiles already sum tuples across worker streams, so
    the value is the fragment's *global* output cardinality. Exchange
    nodes pair with their ``.recv`` profile (and are popped to keep the
    queues aligned even though exchanges are never annotated).
    """
    by_label = flatten_profiles(profiles)

    def pop(label: str):
        queue = by_label.get(label)
        if queue is None and "(" in label:
            # plan qualifiers like Aggr(final)[b] profile as plain Aggr[b]
            head, _, rest = label.partition("(")
            _, _, tail = rest.partition(")")
            queue = by_label.get(head + tail)
        return queue.popleft() if queue else None

    actuals: Dict[P.PhysNode, int] = {}

    def walk(node: P.PhysNode) -> None:
        label = node.describe()
        prof = (pop(label + ".recv") if isinstance(node, P.DXchg)
                else pop(label))
        if prof is not None:
            actuals[node] = int(prof.tuples_out)
        for child in node.children:
            walk(child)

    walk(phys_root)
    return actuals
