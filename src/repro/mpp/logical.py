"""Logical query plans: what the SQL front-end / plan builders produce.

A logical plan is serial and distribution-free; the Parallel Rewriter turns
it into a distributed physical plan, and the baseline row engine interprets
the *same* logical plan tuple-at-a-time -- keeping system comparisons
apples-to-apples at the plan level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.expressions import Expr
from repro.engine.operators import AggSpec


class LogicalPlan:
    """Base logical node."""

    children: tuple = ()

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class LScan(LogicalPlan):
    """Scan a stored table.

    ``skip_predicates`` are conjunctive ``(column, op, literal)`` triples
    given to the storage layer for MinMax block skipping; exact filtering
    still needs an LSelect above.
    """

    table: str
    columns: List[str]
    skip_predicates: List[Tuple[str, str, object]] = field(default_factory=list)

    def __post_init__(self):
        self.children = ()


@dataclass
class LSelect(LogicalPlan):
    child: LogicalPlan
    predicate: Expr

    def __post_init__(self):
        self.children = (self.child,)


@dataclass
class LProject(LogicalPlan):
    child: LogicalPlan
    outputs: Dict[str, Expr]

    def __post_init__(self):
        self.children = (self.child,)


@dataclass
class LJoin(LogicalPlan):
    """Join with explicit build (right-ish, usually smaller) side.

    ``probe`` is streamed, ``build`` is materialized. ``how`` is one of
    inner/left/semi/anti (left preserves probe rows and adds ``__matched``).
    """

    build: LogicalPlan
    probe: LogicalPlan
    build_keys: List[str]
    probe_keys: List[str]
    how: str = "inner"
    build_payload: Optional[List[str]] = None

    def __post_init__(self):
        self.children = (self.build, self.probe)


@dataclass
class LAggr(LogicalPlan):
    child: LogicalPlan
    group_by: List[str]
    aggregates: List[AggSpec]

    def __post_init__(self):
        self.children = (self.child,)


@dataclass
class LSort(LogicalPlan):
    child: LogicalPlan
    keys: List[str]
    ascending: Optional[List[bool]] = None

    def __post_init__(self):
        self.children = (self.child,)


@dataclass
class LTopN(LogicalPlan):
    child: LogicalPlan
    keys: List[str]
    n: int
    ascending: Optional[List[bool]] = None

    def __post_init__(self):
        self.children = (self.child,)


@dataclass
class LLimit(LogicalPlan):
    child: LogicalPlan
    n: int

    def __post_init__(self):
        self.children = (self.child,)


@dataclass
class LUnionAll(LogicalPlan):
    """Concatenation of compatible inputs (same output columns)."""

    inputs: List[LogicalPlan]

    def __post_init__(self):
        self.children = tuple(self.inputs)


def rollup(child_factory, keys: Sequence[str], aggregates,
           placeholders: Dict[str, object]) -> LogicalPlan:
    """Build a ROLLUP as a union of aggregations (paper section 1 names
    ROLL UP / GROUPING SETS among the analytical SQL VectorH serves).

    ``child_factory()`` must return a fresh logical subtree per grouping
    level (logical nodes are single-use); level *i* groups by the first
    ``len(keys)-i`` keys, with dropped keys replaced by their placeholder
    value, down to the grand total.
    """
    from repro.engine.expressions import Col, Const

    levels = []
    for depth in range(len(keys), -1, -1):
        group = list(keys[:depth])
        aggr = LAggr(child_factory(), group, list(aggregates))
        outputs = {}
        for key in keys:
            outputs[key] = Col(key) if key in group \
                else Const(placeholders[key])
        for name, _, _ in aggregates:
            outputs[name] = Col(name)
        outputs["__grouping_level"] = Const(depth)
        levels.append(LProject(aggr, outputs))
    return LUnionAll(levels)


def grouping_sets(child_factory, sets: Sequence[Sequence[str]],
                  all_keys: Sequence[str], aggregates,
                  placeholders: Dict[str, object]) -> LogicalPlan:
    """GROUPING SETS as a union of one aggregation per requested set."""
    from repro.engine.expressions import Col, Const

    branches = []
    for group in sets:
        aggr = LAggr(child_factory(), list(group), list(aggregates))
        outputs = {}
        for key in all_keys:
            outputs[key] = Col(key) if key in group \
                else Const(placeholders[key])
        for name, _, _ in aggregates:
            outputs[name] = Col(name)
        branches.append(LProject(aggr, outputs))
    return LUnionAll(branches)


@dataclass
class LWindow(LogicalPlan):
    """Window functions: ``fn(...) OVER (PARTITION BY ... ORDER BY ...)``.

    ``functions`` are ``(output name, function, input expr or None)``;
    see :class:`repro.engine.window.Window` for supported functions.
    """

    child: LogicalPlan
    partition_by: List[str]
    order_by: List[str]
    functions: List[Tuple[str, str, Optional[Expr]]]
    ascending: Optional[List[bool]] = None

    def __post_init__(self):
        self.children = (self.child,)
