"""The Parallel Rewriter: serial logical plan -> distributed physical plan.

Mirrors paper section 5: the rewriter tracks structural properties
(partitioning with its partition->node mapping, sort order, replication)
and applies transformations that avoid DXchg operators wherever possible:

* **local join** -- matching partitions of co-partitioned tables join on
  their responsible node with no communication;
* **replicate build side** -- a build side computed entirely from
  replicated tables joins locally on every node;
* **partial aggregation** -- aggregate locally before the DXchgHashSplit
  so only group partials travel;
* **merge join** -- co-ordered clustered tables join by merging.

Each rule has a flag so the Figure-5 ablation benchmark can toggle it. The
choice between broadcasting a build side and reshuffling both sides is
cost-based on cardinality estimates, with DXchg traffic weighted heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.engine.expressions import Col, Div, Expr
from repro.engine.operators import AggSpec
from repro.mpp import logical as L
from repro.mpp import plan as P
from repro.mpp.feedback import fragment_signature
from repro.mpp.strategy import ExchangeDecision, NodeEstimate, QueryPlan


@dataclass
class RewriterFlags:
    """Rule toggles (all on in production; benches turn them off)."""

    local_join: bool = True
    replicate_build: bool = True
    partial_aggr: bool = True
    merge_join: bool = True
    #: estimated build rows * workers below which broadcast beats reshuffle
    net_weight: float = 4.0
    #: consult the cluster's CardinalityFeedbackStore before static stats
    use_feedback: bool = True
    #: allow feedback-driven build/probe swaps on inner joins
    cost_join_order: bool = True


def _table(cluster, name: str):
    """Catalog lookup honouring vh$ system tables when available."""
    lookup = getattr(cluster, "table", None)
    if callable(lookup):
        return lookup(name)
    return cluster.tables[name]


class ParallelRewriter:
    """Produces a distributed plan rooted at the session master."""

    def __init__(self, cluster, flags: Optional[RewriterFlags] = None):
        self.cluster = cluster
        self.flags = flags or RewriterFlags()
        self._annotations: Dict[P.PhysNode, NodeEstimate] = {}
        self._decisions: List[ExchangeDecision] = []
        self._est_memo: Dict[int, Tuple[float, bool]] = {}
        self._sig_memo: Dict[int, Optional[str]] = {}

    # ---------------------------------------------------------------- public

    def plan(self, root: L.LogicalPlan) -> QueryPlan:
        """Plan once: physical tree + cardinality annotations + the
        exchange decisions an ExecutionStrategy may revisit mid-query."""
        self._annotations = {}
        self._decisions = []
        self._est_memo = {}
        self._sig_memo = {}
        phys, _ = self._rw(root)
        if phys.distribution.kind != P.MASTER:
            phys = P.DXUnion(phys)
        return QueryPlan(logical=root, root=phys,
                         annotations=self._annotations,
                         decisions=self._decisions, flags=self.flags)

    def rewrite(self, root: L.LogicalPlan) -> P.PhysNode:
        """Compatibility shim: plan and return the bare physical tree."""
        return self.plan(root).root

    # ------------------------------------------------------------ estimates

    def _store(self):
        if not self.flags.use_feedback:
            return None
        return getattr(self.cluster, "feedback", None)

    def _signature(self, node: L.LogicalPlan) -> Optional[str]:
        key = id(node)
        if key not in self._sig_memo:
            self._sig_memo[key] = fragment_signature(node)
        return self._sig_memo[key]

    def _estimate(self, node: L.LogicalPlan) -> Tuple[float, bool]:
        """(rows, feedback_backed): observed cardinality when the store
        remembers this fragment, static stats otherwise."""
        key = id(node)
        memo = self._est_memo.get(key)
        if memo is not None:
            return memo
        store = self._store()
        if store is not None:
            signature = self._signature(node)
            if signature is not None:
                observed = store.lookup(signature)
                if observed is not None:
                    result = (max(float(observed), 1.0), True)
                    self._est_memo[key] = result
                    return result
        result = (self._static_rows(node), False)
        self._est_memo[key] = result
        return result

    def estimate_rows(self, node: L.LogicalPlan) -> float:
        return self._estimate(node)[0]

    def estimate_with_source(self, node: L.LogicalPlan) -> Tuple[float, str]:
        rows, feedback = self._estimate(node)
        return rows, ("feedback" if feedback else "static")

    def _static_rows(self, node: L.LogicalPlan) -> float:
        if isinstance(node, L.LScan):
            table = _table(self.cluster, node.table)
            rows = sum(p.n_stable for p in table.partitions)
            if node.skip_predicates:
                rows *= 0.3 ** len(node.skip_predicates)
            return max(rows, 1.0)
        if isinstance(node, L.LSelect):
            return max(self.estimate_rows(node.child) * 0.3, 1.0)
        if isinstance(node, L.LProject):
            return self.estimate_rows(node.child)
        if isinstance(node, L.LJoin):
            probe = self.estimate_rows(node.probe)
            if node.how in ("semi", "anti"):
                return max(probe * 0.5, 1.0)
            return probe  # FK-join assumption
        if isinstance(node, L.LAggr):
            return min(self.estimate_rows(node.child), 10_000.0)
        if isinstance(node, (L.LSort, L.LTopN, L.LLimit)):
            return self.estimate_rows(node.child)
        return 1000.0

    # ----------------------------------------------------------------- rules

    _ANNOTATED = (L.LScan, L.LSelect, L.LProject, L.LJoin, L.LAggr)

    def _rw(self, node: L.LogicalPlan) -> Tuple[P.PhysNode, Tuple[str, ...]]:
        """Dispatch wrapper: cost-based join-order fix-ups before the
        rewrite, cardinality annotations on the produced node after."""
        if isinstance(node, L.LJoin):
            node = self._maybe_swap(node)
        phys, order = self._rw_node(node)
        if isinstance(node, self._ANNOTATED):
            rows, source = self.estimate_with_source(node)
            self._annotations[phys] = NodeEstimate(
                signature=self._signature(node), rows=rows, source=source)
        return phys, order

    def _maybe_swap(self, node: L.LJoin) -> L.LJoin:
        """Feedback-driven build/probe swap: when observed cardinalities
        show the planned build side is the bigger one, hash the smaller.
        Only inner joins without a payload column keep identical output
        columns under the swap, and only feedback-backed numbers justify
        overriding the written order (static guesses keep plans stable)."""
        if not (self.flags.cost_join_order and node.how == "inner"
                and node.build_payload is None):
            return node
        b_rows, b_fb = self._estimate(node.build)
        p_rows, p_fb = self._estimate(node.probe)
        if (b_fb or p_fb) and b_rows > p_rows:
            return L.LJoin(build=node.probe, probe=node.build,
                           build_keys=list(node.probe_keys),
                           probe_keys=list(node.build_keys),
                           how="inner", build_payload=None)
        return node

    def _rw_node(self, node: L.LogicalPlan) \
            -> Tuple[P.PhysNode, Tuple[str, ...]]:
        """Returns (physical node, sort-order property)."""
        if isinstance(node, L.LScan):
            return self._rw_scan(node)
        if isinstance(node, L.LSelect):
            child, order = self._rw(node.child)
            return P.PSelect(child, node.predicate), order
        if isinstance(node, L.LProject):
            child, order = self._rw(node.child)
            phys = P.PProject(child, node.outputs)
            kept = set(node.outputs)
            dist = child.distribution
            if dist.is_partitioned and not set(dist.keys) <= kept:
                phys.distribution = P.Distribution(P.PARTITIONED)
            order = tuple(o for o in order if o in kept)
            return phys, order
        if isinstance(node, L.LJoin):
            return self._rw_join(node)
        if isinstance(node, L.LAggr):
            return self._rw_aggr(node)
        if isinstance(node, L.LSort):
            child, _ = self._rw(node.child)
            if child.distribution.kind != P.MASTER:
                child = P.DXUnion(child)
            asc = node.ascending or [True] * len(node.keys)
            return P.PSort(child, node.keys, asc), tuple(node.keys)
        if isinstance(node, L.LTopN):
            child, _ = self._rw(node.child)
            asc = node.ascending or [True] * len(node.keys)
            if child.distribution.kind in (P.PARTITIONED, P.REPLICATED):
                partial = P.PTopN(child, node.keys, node.n, asc, "partial")
                gathered = P.DXUnion(partial)
                return (P.PTopN(gathered, node.keys, node.n, asc, "final"),
                        tuple(node.keys))
            return (P.PTopN(child, node.keys, node.n, asc, "final"),
                    tuple(node.keys))
        if isinstance(node, L.LLimit):
            child, order = self._rw(node.child)
            if child.distribution.kind != P.MASTER:
                child = P.DXUnion(child)
            return P.PLimit(child, node.n), order
        if isinstance(node, L.LWindow):
            return self._rw_window(node)
        if isinstance(node, L.LUnionAll):
            kids = []
            for child in node.inputs:
                phys, _ = self._rw(child)
                if phys.distribution.kind != P.MASTER:
                    phys = P.DXUnion(phys)
                kids.append(phys)
            return P.PUnionAll(kids, P.Distribution(P.MASTER)), ()
        raise PlanError(f"unknown logical node {node!r}")

    def _rw_window(self, node: L.LWindow):
        """Window functions compute per PARTITION-BY group: like an
        aggregation, a group must live wholly on one worker, so reshuffle
        on the partition keys unless the input partitioning already
        guarantees it (or gather everything when there are no keys)."""
        child, _ = self._rw(node.child)
        dist = child.distribution
        if node.partition_by:
            aligned = (dist.is_partitioned and dist.keys
                       and set(dist.keys) <= set(node.partition_by))
            if not aligned and dist.kind != P.MASTER \
                    and dist.kind != P.REPLICATED:
                child = P.DXHashSplit(child, node.partition_by)
            out_dist = child.distribution
        else:
            if child.distribution.kind == P.PARTITIONED:
                child = P.DXUnion(child)
            out_dist = child.distribution
        phys = P.PWindow(child, node.partition_by, node.order_by,
                         node.functions, node.ascending, out_dist)
        return phys, tuple(node.partition_by) + tuple(node.order_by)

    def _rw_scan(self, node: L.LScan) -> Tuple[P.PhysNode, Tuple[str, ...]]:
        table = _table(self.cluster, node.table)
        if table.is_replicated:
            dist = P.Distribution(P.REPLICATED)
        else:
            dist = P.Distribution(
                P.PARTITIONED, tuple(table.schema.partition_key),
                co_location=node.table,
            )
        order = tuple(table.schema.clustered_on)
        order = tuple(c for c in order if c in node.columns)
        return P.PScan(node.table, node.columns, node.skip_predicates,
                       dist), order

    # ----------------------------------------------------------------- joins

    def _rw_join(self, node: L.LJoin) -> Tuple[P.PhysNode, Tuple[str, ...]]:
        build, border = self._rw(node.build)
        probe, porder = self._rw(node.probe)
        bdist, pdist = build.distribution, probe.distribution
        flags = self.flags

        def joined(b, p, dist) -> P.PhysNode:
            # merge join when both inputs arrive ordered on the join key
            if (flags.merge_join and node.how == "inner"
                    and len(node.build_keys) == 1
                    and border[:1] == (node.build_keys[0],)
                    and porder[:1] == (node.probe_keys[0],)
                    and node.build_payload is None):
                return P.PMergeJoin(p, b, node.probe_keys[0],
                                    node.build_keys[0], dist)
            return P.PHashJoin(b, p, node.build_keys, node.probe_keys,
                               node.how, node.build_payload, dist)

        # 1. both replicated -> replicated local join
        if bdist.kind == P.REPLICATED and pdist.kind == P.REPLICATED:
            return joined(build, probe, P.Distribution(P.REPLICATED)), porder

        # 2. replicate-build rule: build is replicated, probe partitioned
        if (flags.replicate_build and bdist.kind == P.REPLICATED
                and pdist.is_partitioned):
            return joined(build, probe, pdist), porder

        # 3. co-located local join
        if (flags.local_join and bdist.is_partitioned and pdist.is_partitioned
                and self._co_partitioned(bdist, node.build_keys,
                                         pdist, node.probe_keys)):
            return joined(build, probe, pdist), porder

        # 4. movement required: broadcast build vs reshuffle both
        n_workers = max(1, len(self.cluster.workers))
        build_rows = self.estimate_rows(node.build)
        probe_rows = self.estimate_rows(node.probe)
        broadcast_cost = build_rows * (n_workers - 1)
        reshuffle_cost = build_rows + probe_rows
        probe_aligned = pdist.is_partitioned and tuple(node.probe_keys) == \
            tuple(pdist.keys)
        if probe_aligned:
            reshuffle_cost = build_rows  # probe already in place
        # rows the *other* choice would move for the probe side -- what a
        # mid-query watcher needs to re-run this comparison with actuals
        probe_move_rows = 0.0 if probe_aligned else probe_rows
        if broadcast_cost <= reshuffle_cost:
            bcast = P.DXBroadcast(build)
            self._decisions.append(ExchangeDecision(
                node=bcast, signature=self._signature(node.build),
                choice="broadcast", estimated=build_rows,
                probe_move_rows=probe_move_rows, n_workers=n_workers))
            dist = pdist if pdist.is_partitioned else \
                P.Distribution(P.PARTITIONED)
            if not pdist.is_partitioned and pdist.kind != P.MASTER:
                dist = P.Distribution(P.REPLICATED)
            return joined(bcast, probe, dist), porder

        # Reshuffle the misaligned side(s). A side that keeps its table
        # partitioning dictates the partition->node mapping the other side
        # must follow (align_with), else both use the plain hash split.
        # Exploiting existing placement is part of the locality-detection
        # rule, so the local_join flag gates it (the Figure-5 ablation).
        build_aligned = (flags.local_join and bdist.is_partitioned
                         and tuple(bdist.keys) == tuple(node.build_keys))
        probe_aligned = probe_aligned and flags.local_join
        new_build, new_probe = build, probe
        if probe_aligned and not build_aligned:
            new_build = P.DXHashSplit(build, node.build_keys,
                                      align_with=pdist.co_location)
            out_co = pdist.co_location
        elif build_aligned and not probe_aligned:
            new_probe = P.DXHashSplit(probe, node.probe_keys,
                                      align_with=bdist.co_location)
            out_co = bdist.co_location
        elif probe_aligned and build_aligned:
            # same keys, but incompatible mappings: realign the build side
            new_build = P.DXHashSplit(build, node.build_keys,
                                      align_with=pdist.co_location)
            out_co = pdist.co_location
        else:
            new_build = P.DXHashSplit(build, node.build_keys)
            new_probe = P.DXHashSplit(probe, node.probe_keys)
            out_co = None
        if new_build is not build:
            self._decisions.append(ExchangeDecision(
                node=new_build, signature=self._signature(node.build),
                choice="repartition", estimated=build_rows,
                probe_move_rows=probe_move_rows, n_workers=n_workers))
        dist = P.Distribution(P.PARTITIONED, tuple(node.probe_keys),
                              co_location=out_co)
        # exchanges destroy order
        return joined(new_build, new_probe, dist), ()

    def _co_partitioned(self, bdist, build_keys, pdist, probe_keys) -> bool:
        """Matching partitions co-located on their responsible node?

        True when both sides are hash-partitioned on exactly the join keys
        of tables with the same partition count -- VectorH's co-location
        invariant (the affinity map pins FK-related tables together).
        """
        if not bdist.keys or not pdist.keys:
            return False
        if tuple(bdist.keys) != tuple(build_keys):
            return False
        if tuple(pdist.keys) != tuple(probe_keys):
            return False
        bt, pt = bdist.co_location, pdist.co_location
        if bt is None and pt is None:
            # both sides came from plain DXchgHashSplits, which share the
            # hash-modulo-workers mapping -> co-located by construction
            return True
        if bt is None or pt is None:
            # table partitioning on one side, plain hash split on the
            # other: the partition->node mappings differ, NOT co-located
            return False
        if bt == pt:
            return True
        b_parts = _table(self.cluster, bt).n_partitions
        p_parts = _table(self.cluster, pt).n_partitions
        return b_parts == p_parts

    # ----------------------------------------------------------- aggregation

    def _rw_aggr(self, node: L.LAggr) -> Tuple[P.PhysNode, Tuple[str, ...]]:
        child, _ = self._rw(node.child)
        dist = child.distribution
        group = list(node.group_by)

        # already partitioned on a subset of the group keys: direct, local
        if (dist.is_partitioned and dist.keys
                and set(dist.keys) <= set(group)):
            out_dist = P.Distribution(P.PARTITIONED, tuple(dist.keys),
                                      co_location=dist.co_location)
            return P.PAggr(child, group, node.aggregates, "direct",
                           out_dist), ()

        if dist.kind in (P.MASTER,):
            return P.PAggr(child, group, node.aggregates, "direct",
                           dist), ()
        if dist.kind == P.REPLICATED:
            out = P.PAggr(child, group, node.aggregates, "direct",
                          P.Distribution(P.REPLICATED))
            return out, ()

        splittable, partial_specs, final_specs, post = split_aggregates(
            node.aggregates
        )
        if group:
            if self.flags.partial_aggr and splittable:
                partial = P.PAggr(child, group, partial_specs, "partial",
                                  P.Distribution(P.PARTITIONED))
                shuffled = P.DXHashSplit(partial, group)
                final = P.PAggr(shuffled, group, final_specs, "final",
                                shuffled.distribution)
                out: P.PhysNode = final
            else:
                shuffled = P.DXHashSplit(child, group)
                out = P.PAggr(shuffled, group, node.aggregates, "direct",
                              shuffled.distribution)
                post = None
            if post:
                outputs = {g: Col(g) for g in group}
                outputs.update(post)
                out = P.PProject(out, outputs)
            return out, ()
        # total aggregate
        if self.flags.partial_aggr and splittable:
            partial = P.PAggr(child, [], partial_specs, "partial",
                              P.Distribution(P.PARTITIONED))
            gathered = P.DXUnion(partial)
            out = P.PAggr(gathered, [], final_specs, "final",
                          gathered.distribution)
            if post:
                out = P.PProject(out, post)
            return out, ()
        gathered = P.DXUnion(child)
        return P.PAggr(gathered, [], node.aggregates, "direct",
                       gathered.distribution), ()


def split_aggregates(aggs: Sequence[AggSpec]):
    """Split aggregates into partial + final phases.

    Returns ``(splittable, partial_specs, final_specs, post_project)``.
    ``avg`` splits into sum+count partials recombined by a projection;
    ``count_distinct`` cannot be split (the rewriter reshuffles first).
    """
    partial: List[AggSpec] = []
    final: List[AggSpec] = []
    post: Dict[str, Expr] = {}
    for name, func, expr in aggs:
        if func == "count_distinct":
            return False, [], [], None
        if func == "sum":
            partial.append((name, "sum", expr))
            final.append((name, "sum", Col(name)))
            post[name] = Col(name)
        elif func == "count":
            partial.append((name, "count", expr))
            final.append((name, "sum", Col(name)))
            post[name] = Col(name)
        elif func in ("min", "max"):
            partial.append((name, func, expr))
            final.append((name, func, Col(name)))
            post[name] = Col(name)
        elif func == "avg":
            partial.append((f"{name}__psum", "sum", expr))
            partial.append((f"{name}__pcnt", "count", expr))
            final.append((f"{name}__psum", "sum", Col(f"{name}__psum")))
            final.append((f"{name}__pcnt", "sum", Col(f"{name}__pcnt")))
            post[name] = Div(Col(f"{name}__psum"), Col(f"{name}__pcnt"))
        else:
            return False, [], [], None
    needs_post = any(func == "avg" for _, func, _ in aggs)
    return True, partial, final, (post if needs_post else None)
