"""MPP layer: distributed plans, exchange operators, the Parallel Rewriter.

Shared-nothing parallelism in VectorH is encapsulated in Exchange
operators (Volcano style): DXchgUnion, DXchgHashSplit and DXchgBroadcast
redistribute tuple streams between worker nodes over (simulated) MPI while
every other operator stays parallelism-unaware. The Parallel Rewriter turns
a serial logical plan into a distributed physical plan, avoiding
communication at all cost: co-located partition-wise joins, replicated
build sides, and partial aggregation below the exchange (paper section 5).
"""

from repro.mpp.logical import (
    LAggr,
    LJoin,
    LLimit,
    LogicalPlan,
    LProject,
    LScan,
    LSelect,
    LSort,
    LTopN,
)
from repro.mpp.plan import (
    DXBroadcast,
    DXchg,
    DXHashSplit,
    DXUnion,
    PhysNode,
)
from repro.mpp.feedback import CardinalityFeedbackStore
from repro.mpp.strategy import ExecutionStrategy, QueryPlan
from repro.mpp.rewriter import ParallelRewriter, RewriterFlags
from repro.mpp.executor import MppExecutor, QueryResult

__all__ = [
    "LogicalPlan", "LScan", "LSelect", "LProject", "LJoin", "LAggr",
    "LSort", "LTopN", "LLimit",
    "PhysNode", "DXchg", "DXUnion", "DXHashSplit", "DXBroadcast",
    "ParallelRewriter", "RewriterFlags",
    "CardinalityFeedbackStore", "ExecutionStrategy", "QueryPlan",
    "MppExecutor", "QueryResult",
]
