"""Distributed physical plan nodes.

Each node carries a *distribution* the rewriter derived:

* ``partitioned`` -- one stream per worker node, optionally hash-partitioned
  on a key set (with the partition->node mapping, which the paper added to
  the structural properties to stay correct when responsibilities move);
* ``replicated`` -- the full relation available on every worker;
* ``master`` -- a single stream at the session master.

Exchange nodes are the only places data moves between distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.expressions import Expr
from repro.engine.operators import AggSpec

PARTITIONED = "partitioned"
REPLICATED = "replicated"
MASTER = "master"


@dataclass
class Distribution:
    """Structural property of a physical node's output."""

    kind: str  # partitioned | replicated | master
    keys: Tuple[str, ...] = ()  # hash-partitioning keys, if any
    co_location: Optional[str] = None  # table whose partition map we follow

    @property
    def is_partitioned(self) -> bool:
        return self.kind == PARTITIONED


class PhysNode:
    """Base physical node."""

    label = "Phys"

    def __init__(self, children: Sequence["PhysNode"],
                 distribution: Distribution):
        self.children: List[PhysNode] = list(children)
        self.distribution = distribution

    def describe(self) -> str:
        return self.label

    def walk(self):
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}  <{self.distribution.kind}"
                 + (f" on {','.join(self.distribution.keys)}"
                    if self.distribution.keys else "") + ">"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class PScan(PhysNode):
    label = "MScan"

    def __init__(self, table: str, columns: List[str],
                 skip_predicates, distribution: Distribution):
        super().__init__((), distribution)
        self.table = table
        self.columns = columns
        self.skip_predicates = list(skip_predicates)

    def describe(self):
        return f"MScan[{self.table}]"


class PSelect(PhysNode):
    label = "Select"

    def __init__(self, child: PhysNode, predicate: Expr):
        super().__init__([child], child.distribution)
        self.predicate = predicate

    def describe(self):
        return f"Select[{self.predicate!r}]"


class PProject(PhysNode):
    label = "Project"

    def __init__(self, child: PhysNode, outputs: Dict[str, Expr]):
        super().__init__([child], child.distribution)
        self.outputs = outputs

    def describe(self):
        return f"Project[{', '.join(self.outputs)}]"


class PAggr(PhysNode):
    label = "Aggr"

    def __init__(self, child: PhysNode, group_by, aggregates: List[AggSpec],
                 phase: str, distribution: Distribution):
        super().__init__([child], distribution)
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.phase = phase  # direct | partial | final

    def describe(self):
        keys = ",".join(self.group_by) or "total"
        return f"Aggr({self.phase})[{keys}]"


class PHashJoin(PhysNode):
    label = "HashJoin"

    def __init__(self, build: PhysNode, probe: PhysNode,
                 build_keys, probe_keys, how: str,
                 build_payload, distribution: Distribution):
        super().__init__([build, probe], distribution)
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)
        self.how = how
        self.build_payload = build_payload

    def describe(self):
        return (f"HashJoin({self.how})"
                f"[{','.join(self.probe_keys)}={','.join(self.build_keys)}]")


class PMergeJoin(PhysNode):
    label = "MergeJoin"

    def __init__(self, left: PhysNode, right: PhysNode,
                 left_key: str, right_key: str, distribution: Distribution):
        super().__init__([left, right], distribution)
        self.left_key = left_key
        self.right_key = right_key

    def describe(self):
        return f"MergeJoin[{self.left_key}={self.right_key}]"


class PSort(PhysNode):
    label = "Sort"

    def __init__(self, child: PhysNode, keys, ascending):
        super().__init__([child], child.distribution)
        self.keys = list(keys)
        self.ascending = ascending

    def describe(self):
        return f"Sort[{','.join(self.keys)}]"


class PTopN(PhysNode):
    label = "TopN"

    def __init__(self, child: PhysNode, keys, n: int, ascending,
                 phase: str):
        super().__init__([child], child.distribution)
        self.keys = list(keys)
        self.n = n
        self.ascending = ascending
        self.phase = phase  # partial | final

    def describe(self):
        return f"TopN({self.phase})[{','.join(self.keys)}; {self.n}]"


class PUnionAll(PhysNode):
    label = "UnionAll"

    def __init__(self, children, distribution: Distribution):
        super().__init__(children, distribution)


class PWindow(PhysNode):
    label = "Window"

    def __init__(self, child: PhysNode, partition_by, order_by, functions,
                 ascending, distribution: Distribution):
        super().__init__([child], distribution)
        self.partition_by = list(partition_by)
        self.order_by = list(order_by)
        self.functions = list(functions)
        self.ascending = ascending

    def describe(self):
        names = ",".join(n for n, _, _ in self.functions)
        return f"Window[{names}; partition by {','.join(self.partition_by) or '-'}]"


class PLimit(PhysNode):
    label = "Limit"

    def __init__(self, child: PhysNode, n: int):
        super().__init__([child], child.distribution)
        self.n = n

    def describe(self):
        return f"Limit[{self.n}]"


# ---------------------------------------------------------------------------
# Exchanges: the only data movement points
# ---------------------------------------------------------------------------

class DXchg(PhysNode):
    """Base of the exchange nodes: the executor turns each one into a
    sender/receiver operator pair streaming through DXchg channels."""


class DXUnion(DXchg):
    """Gather all worker streams at the session master."""

    label = "DXchgUnion"

    def __init__(self, child: PhysNode):
        super().__init__([child], Distribution(MASTER))


class DXHashSplit(DXchg):
    """Repartition by hash of ``keys`` across all workers (all-to-all).

    When ``align_with`` names a table, rows are routed with *that table's*
    partition function and responsibility map instead of a plain
    hash-modulo-workers -- this is the partition->node mapping the paper
    added to the partitioning property so that a reshuffled side really
    co-locates with a table-partitioned side.
    """

    label = "DXchgHashSplit"

    def __init__(self, child: PhysNode, keys, align_with: str = None):
        super().__init__(
            [child],
            Distribution(PARTITIONED, tuple(keys), co_location=align_with),
        )
        self.keys = list(keys)
        self.align_with = align_with

    def describe(self):
        suffix = f" ~{self.align_with}" if self.align_with else ""
        return f"DXchgHashSplit[{','.join(self.keys)}{suffix}]"


class DXBroadcast(DXchg):
    """Replicate a (small) relation to every worker."""

    label = "DXchgBroadcast"

    def __init__(self, child: PhysNode):
        super().__init__([child], Distribution(REPLICATED))
