"""The VectorH cluster facade: the library's main entry point.

::

    from repro.cluster import VectorHCluster

    cluster = VectorHCluster(n_nodes=4)
    cluster.create_table(schema)
    cluster.bulk_load("orders", columns)
    result = cluster.query(logical_plan)
"""

from repro.cluster.vectorh import VectorHCluster

__all__ = ["VectorHCluster"]
