"""VectorHCluster: workers, session master, catalog, DML, failure handling.

Wires every subsystem together the way section 2's roadmap describes:
HDFS storage with the instrumented placement policy (section 3), YARN
negotiation through dbAgent (section 4), MPP query execution through the
Parallel Rewriter and DXchg operators (section 5), and PDT-based
transactions with per-partition WALs and 2PC (section 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.config import Config, DEFAULT_CONFIG
from repro.common.errors import DataLossError, ReproError, StorageError
from repro.engine.expressions import Expr
from repro.flow.assignment import affinity_map, responsibility_assignment
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.placement import VectorHPlacementPolicy
from repro.mpp.executor import MppExecutor, QueryResult
from repro.mpp.feedback import CardinalityFeedbackStore
from repro.mpp.logical import LogicalPlan
from repro.mpp.rewriter import ParallelRewriter, RewriterFlags
from repro.net.mpi import MpiFabric
from repro.obs import ClusterEventLog, MetricsRegistry, SimClock, Tracer
from repro.obs.introspect import SystemCatalog, explain_analyze, resolve_table
from repro.pdt.stack import PdtStack
from repro.storage.buffer import BufferPool
from repro.storage.schema import TableSchema
from repro.storage.table import StoredTable
from repro.txn.manager import DistributedTransaction, TransactionManager
from repro.txn.wal import WalManager
from repro.workload import Session, WorkloadManager
from repro.yarn.dbagent import DbAgent
from repro.yarn.manager import ResourceManager

#: inserts of at least this many rows to *unordered* tables append directly
#: to disk instead of buffering in PDTs (paper section 6).
DIRECT_APPEND_THRESHOLD = 4096


def _pin_responsible_into_affinity(amap, resp) -> None:
    """Guarantee the responsible node is one of the partition's replica
    targets (the capacity constraints of the two flow problems can
    otherwise disagree in corner cases)."""
    for pid, node in resp.items():
        if node not in amap[pid]:
            amap[pid] = [node] + [n for n in amap[pid] if n != node][:-1]


class VectorHCluster:
    """An in-process VectorH deployment."""

    def __init__(
        self,
        n_nodes: int = 4,
        config: Optional[Config] = None,
        node_names: Optional[List[str]] = None,
        db_path: str = "/db",
        num_workers: Optional[int] = None,
        yarn_queues: Optional[Dict[str, int]] = None,
    ):
        self.config = config or DEFAULT_CONFIG
        names = node_names or [f"node{i + 1}" for i in range(n_nodes)]
        self.db_path = db_path

        # one observability plane for every subsystem below
        self.registry = MetricsRegistry()
        self.sim_clock = SimClock()
        self.tracer = Tracer(sim_clock=self.sim_clock)
        self.events = ClusterEventLog(
            sim_clock=self.sim_clock,
            retention=self.config.event_log_retention,
            registry=self.registry)
        #: observed-cardinality memory consulted by every ParallelRewriter
        self.feedback = (
            CardinalityFeedbackStore(registry=self.registry,
                                     sim_clock=self.sim_clock)
            if self.config.adaptive_feedback else None)

        self.placement = VectorHPlacementPolicy()
        self.hdfs = HdfsCluster(names, self.config, self.placement,
                                registry=self.registry, events=self.events,
                                sim_clock=self.sim_clock)
        self.rm = ResourceManager(yarn_queues or {"default": 5, "prod": 8},
                                  registry=self.registry, events=self.events)
        for name in names:
            self.rm.register_node(
                name, self.config.cores_per_node, self.config.memory_per_node_mb
            )
        self.dbagent = DbAgent(
            self.rm, self.hdfs, names,
            slice_cores=max(1, self.config.cores_per_node // 4),
            slice_memory_mb=max(256, self.config.memory_per_node_mb // 8),
        )
        self.workers: List[str] = self.dbagent.negotiate_worker_set(
            num_workers or len(names), db_path + "/"
        )
        self.session_master: str = self.workers[0]

        self.mpi = MpiFabric(self.config.mpi_message_size,
                             registry=self.registry,
                             sim_clock=self.sim_clock)
        self._pools: Dict[str, BufferPool] = {
            name: BufferPool(self.hdfs, registry=self.registry, node=name)
            for name in names
        }
        self.tables: Dict[str, StoredTable] = {}
        self._indexes: Dict[Tuple[str, str], object] = {}
        self._responsibility: Dict[Tuple[str, int], str] = {}
        self.wal = WalManager(self.hdfs, db_path, registry=self.registry)
        self.txn = TransactionManager(self)
        self.executor = MppExecutor(self)
        self.catalog = SystemCatalog(self)
        self.workload = WorkloadManager(self)
        # the automatic footprint follows real load, not a guessed count
        self.dbagent.workload_probe = self.workload.load
        self.dbagent.events = self.events
        #: the flight recorder: metric history + alert engine + query log,
        #: sampling from the workload manager's round hook (before any
        #: chaos controller installed later, so samples precede faults)
        self.monitor = None
        if self.config.monitor_enabled:
            from repro.obs.monitor import FlightRecorder
            self.monitor = FlightRecorder(self)
            self.workload.round_hooks.append(self.monitor.tick)
        #: the continuous profiler: every finished query's operator tree
        #: folds into cumulative per-kind/per-kernel stats
        self.profiler = None
        if self.config.profiler_enabled:
            from repro.obs.profiler import ContinuousProfiler
            self.profiler = ContinuousProfiler(
                self.registry, top_k=self.config.profiler_top_k)
        #: installed ChaosController when fault injection is active
        self.chaos = None
        #: installed ServerFrontend when the cluster is served over the
        #: simulated wire protocol (see :meth:`serve`)
        self.frontend = None

    # ---------------------------------------------------------------- plumbing

    def pool_of(self, node: str) -> BufferPool:
        return self._pools[node]

    def table(self, name: str):
        """Resolve a table name: base tables, then vh$ system tables."""
        return resolve_table(self, name)

    def responsible(self, table: str, pid: int) -> str:
        stored = self.table(table)
        if stored.is_replicated:
            return self.session_master
        return self._responsibility[(table, pid)]

    def responsibility_map(self, table: str) -> Dict[int, str]:
        stored = self.tables[table]
        return {pid: self.responsible(table, pid)
                for pid in range(stored.n_partitions)}

    # --------------------------------------------------------------------- DDL

    def create_table(self, schema: TableSchema) -> StoredTable:
        """Create a table: storage, PDT stacks, WALs and partition affinity.

        Partition ``pid`` of *every* table maps to the same worker triple
        (round-robin, Figure 2), which co-locates equal partition ids
        across tables -- the invariant behind co-located FK joins.
        """
        if schema.name in self.tables:
            raise StorageError(f"table exists: {schema.name}")
        stored = StoredTable(self.hdfs, self.db_path, schema, self.config)
        self.tables[schema.name] = stored
        n = len(self.workers)
        r = min(self.config.replication, n)
        for pid in range(stored.n_partitions):
            nodes = [self.workers[(pid + i) % n] for i in range(r)]
            self.placement.set_affinity(stored.partition_tag(pid), nodes)
            self._responsibility[(schema.name, pid)] = nodes[0]
            self.wal.create_partition_wal(schema.name, pid, writer=nodes[0])
        self.wal.log_global("ddl", ("create_table", schema.name),
                            writer=self.session_master)
        self.events.emit("cluster", "create_table", table=schema.name,
                         partitions=stored.n_partitions)
        return stored

    def create_index(self, table: str, column: str):
        """Create an unclustered index for point queries (section 2)."""
        from repro.storage.secondary import SecondaryIndex
        key = (table, column)
        if key in self._indexes:
            raise StorageError(f"index on {table}.{column} exists")
        index = SecondaryIndex(self.tables[table], column)
        self._indexes[key] = index
        self.wal.log_global("ddl", ("create_index", table, column),
                            writer=self.session_master)
        self.events.emit("cluster", "create_index", table=table,
                         column=column)
        return index

    def index_lookup(self, table: str, column: str, value,
                     columns: Sequence[str],
                     trans: Optional[DistributedTransaction] = None):
        """Point lookup via an unclustered index, avoiding a table scan.

        ``value`` uses the engine representation (floats for decimals);
        it is converted to storage form for the probe.
        """
        index = self._indexes.get((table, column))
        if index is None:
            raise StorageError(f"no index on {table}.{column}")
        stored = self.tables[table]
        scale = stored._decimal_scale(column)
        probe = int(round(value * scale)) if scale is not None else value
        # lookups run per partition at the responsible node
        out = {c: [] for c in columns}
        for pid in range(stored.n_partitions):
            reader = self.responsible(table, pid)
            t = trans.trans_for(table, pid) if trans is not None else None
            partial = {c: [] for c in columns}
            index._lookup_partition(pid, probe, columns, t, reader,
                                    self.pool_of(reader), partial)
            for c in columns:
                out[c].extend(partial[c])
        from repro.storage.secondary import _to_array
        return {c: _to_array(v) for c, v in out.items()}

    def drop_table(self, name: str) -> None:
        stored = self.tables.pop(name, None)
        if stored is None:
            raise StorageError(f"no such table {name}")
        for pid in range(stored.n_partitions):
            self._responsibility.pop((name, pid), None)
            path = self.wal.partition_wal_path(name, pid)
            if self.hdfs.exists(path):
                self.hdfs.delete(path)
        for part in stored.partitions:
            part.delete_all()
        self.wal.log_global("ddl", ("drop_table", name),
                            writer=self.session_master)
        self.txn.bump_epoch(name)
        self.events.emit("cluster", "drop_table", table=name)

    # --------------------------------------------------------------------- load

    def bulk_load(self, table: str, columns: Dict[str, np.ndarray]) -> None:
        """Initial load; each partition is written by its responsible node,
        so the default first-copy-on-the-writer rule already lands the
        primary replica locally."""
        stored = self.tables[table]
        writers = {pid: self.responsible(table, pid)
                   for pid in range(stored.n_partitions)}
        stored.bulk_load(columns, writers)
        self.txn.bump_epoch(table)

    # ------------------------------------------------------------------- queries

    def session(self) -> Session:
        """Open a client session on the workload manager."""
        return self.workload.session()

    def serve(self):
        """Install (or return) the wire-protocol server frontend.

        The frontend accepts simulated client connections, routes each to
        a tenant queue in the workload manager and fronts execution with
        the epoch-keyed result/plan caches. Idempotent: one frontend per
        cluster.
        """
        if self.frontend is None:
            from repro.server import ServerFrontend
            self.frontend = ServerFrontend(self)
        return self.frontend

    def submit(self, plan: LogicalPlan, **kwargs) -> int:
        """Submit a query for concurrent execution; returns the query id.

        The query is rewritten and enters the admission queue; it runs
        interleaved with every other admitted query on the shared
        simulated clock. See :meth:`repro.workload.WorkloadManager.submit`
        for the keyword options (``flags``, ``trans``, ``timeout``,
        ``exchange_mode``, ``thread_to_node``, ``trace``,
        ``memory_estimate``).
        """
        return self.workload.submit(plan, **kwargs)

    def gather(self, query_id: int) -> QueryResult:
        """Drive workload rounds until ``query_id`` finishes; return its
        result (raising the query's error, or
        :class:`~repro.common.errors.QueryCancelled` /
        :class:`~repro.common.errors.QueryTimeout`)."""
        return self.workload.gather(query_id)

    def query(self, plan: LogicalPlan,
              flags: Optional[RewriterFlags] = None,
              trans: Optional[DistributedTransaction] = None,
              exchange_mode: str = "streaming",
              thread_to_node: bool = True,
              trace: bool = False,
              timeout: Optional[float] = None) -> QueryResult:
        """Optimize and execute a logical plan; returns the result batch
        plus execution statistics (network, IO, memory, profile).

        A submit+gather shim over the workload manager: the query goes
        through admission like any other and any previously submitted
        queries interleave with it while it is gathered.
        ``exchange_mode``/``thread_to_node`` tune the DXchg layer: see
        :meth:`repro.mpp.executor.MppExecutor.execute`. With ``trace``
        the result carries the lifecycle span tree
        (rewrite -> assignment -> execute -> commit, with per-stream
        operator and exchange spans grafted under execute); the last
        trace is always available as ``cluster.tracer.last_trace``.
        """
        query_id = self.workload.submit(
            plan, flags=flags, trans=trans, timeout=timeout,
            exchange_mode=exchange_mode, thread_to_node=thread_to_node,
            trace=trace,
        )
        return self.workload.gather(query_id)

    def explain(self, plan: LogicalPlan,
                flags: Optional[RewriterFlags] = None) -> str:
        return ParallelRewriter(self, flags).plan(plan).pretty()

    def explain_analyze(self, plan: LogicalPlan,
                        flags: Optional[RewriterFlags] = None,
                        trans: Optional[DistributedTransaction] = None,
                        exchange_mode: str = "streaming",
                        thread_to_node: bool = True) -> Tuple[str, QueryResult]:
        """Run the plan and render the physical plan with per-operator
        actuals (rows, stream time, wire bytes per link, MinMax skips,
        scan locality); see :func:`repro.obs.introspect.explain_analyze`."""
        return explain_analyze(self, plan, flags, trans=trans,
                               exchange_mode=exchange_mode,
                               thread_to_node=thread_to_node)

    def resolve_minmax(self, plan: LogicalPlan) -> Dict[str, object]:
        """The MinMax network interface (paper section 6).

        Only responsible nodes hold a partition's MinMax index, but the
        session master consults it during query optimization. VectorH's
        MPI interface resolves *all* MinMax information a query needs --
        every selection predicate on every table -- in a single network
        interaction per involved node. Returns, per table, the union of
        qualifying row ranges per partition, charging exactly one
        request/response pair per remote responsible node.
        """
        from repro.mpp.logical import LScan
        wanted: Dict[Tuple[str, int], list] = {}
        for node in plan.walk():
            if isinstance(node, LScan) and node.skip_predicates:
                stored = self.table(node.table)
                for pid in range(stored.n_partitions):
                    wanted.setdefault((node.table, pid), []).extend(
                        node.skip_predicates
                    )
        by_node: Dict[str, list] = {}
        for (table, pid), preds in wanted.items():
            by_node.setdefault(self.responsible(table, pid), []).append(
                (table, pid, preds)
            )
        answers: Dict[str, object] = {}
        for node, requests in by_node.items():
            if node != self.session_master:
                # one request with every (table, partition, predicates)
                # triple, one response with every answer
                self.mpi.send(self.session_master, node,
                              64 * max(1, len(requests)))
            for table, pid, preds in requests:
                stored = self.tables[table]
                store = stored.partitions[pid]
                ranges = store.minmax.qualifying_ranges(
                    stored._storage_predicates(preds), store.n_stable
                )
                answers[f"{table}/{pid}"] = ranges
            if node != self.session_master:
                self.mpi.send(node, self.session_master,
                              48 * max(1, len(requests)))
        return answers

    # ----------------------------------------------------------------------- DML

    def begin(self) -> DistributedTransaction:
        return self.txn.begin()

    def insert(self, table: str, columns: Dict[str, np.ndarray],
               trans: Optional[DistributedTransaction] = None,
               force_pdt: bool = False) -> None:
        """Insert rows. Unordered tables take large inserts as direct
        appends; small inserts (or ``force_pdt``) buffer in PDTs -- "for
        very small inserts this provides better performance (no IO)"."""
        stored = self.tables[table]
        converted = stored.to_storage_columns({
            name: columns[name] for name in stored.schema.column_names
        })
        arrays = {
            name: np.asarray(converted[name],
                             dtype=stored.schema.ctype(name).dtype)
            for name in stored.schema.column_names
        }
        n = len(next(iter(arrays.values())))
        if stored.schema.is_partitioned:
            keys = [arrays[k] for k in stored.schema.partition_key]
            pids = stored.schema.partition_ids(keys)
        else:
            pids = np.zeros(n, dtype=np.int64)

        use_append = (not stored.schema.is_clustered and not force_pdt
                      and n >= DIRECT_APPEND_THRESHOLD)
        own_txn = trans is None
        if use_append:
            for pid in range(stored.n_partitions):
                mask = pids == pid
                if mask.any():
                    stored.append_partition(
                        pid, {k: v[mask] for k, v in arrays.items()},
                        writer=self.responsible(table, pid),
                    )
            self.txn.bump_epoch(table)
            return
        if own_txn:
            trans = self.begin()
        for pid in range(stored.n_partitions):
            mask = pids == pid
            if mask.any():
                stored.insert_rows(
                    pid, {k: v[mask] for k, v in arrays.items()},
                    trans.trans_for(table, pid),
                )
        if own_txn:
            trans.commit()

    def delete_where(self, table: str, predicate: Expr,
                     skip_predicates: Sequence[Tuple[str, str, object]] = (),
                     trans: Optional[DistributedTransaction] = None) -> int:
        """DELETE FROM table WHERE predicate; returns rows deleted.

        The distributed update plan touches each partition at its
        responsible node, so PDTs are modified on the right node.
        """
        stored = self.tables[table]
        own_txn = trans is None
        if own_txn:
            trans = self.begin()
        deleted = 0
        needed = predicate.columns_used()
        for pid in range(stored.n_partitions):
            t = trans.trans_for(table, pid)
            res = stored.scan_partition(pid, needed, list(skip_predicates),
                                        trans=t,
                                        reader=self.responsible(table, pid),
                                        pool=self.pool_of(
                                            self.responsible(table, pid)))
            mask = np.asarray(predicate.eval(res.columns), dtype=bool)
            if mask.any():
                deleted += stored.delete_rows(pid, res.identities[mask], t)
        if own_txn:
            trans.commit()
        return deleted

    def update_where(self, table: str, predicate: Expr,
                     assignments: Dict[str, Expr],
                     trans: Optional[DistributedTransaction] = None) -> int:
        """UPDATE table SET col=expr... WHERE predicate; returns rows hit."""
        stored = self.tables[table]
        own_txn = trans is None
        if own_txn:
            trans = self.begin()
        needed = list(dict.fromkeys(
            predicate.columns_used()
            + [c for e in assignments.values() for c in e.columns_used()]
        ))
        updated = 0
        for pid in range(stored.n_partitions):
            t = trans.trans_for(table, pid)
            node = self.responsible(table, pid)
            res = stored.scan_partition(pid, needed, trans=t, reader=node,
                                        pool=self.pool_of(node))
            mask = np.asarray(predicate.eval(res.columns), dtype=bool)
            if not mask.any():
                continue
            hit = {k: v[mask] for k, v in res.columns.items()}
            new_values = {col: np.asarray(expr.eval(hit))
                          for col, expr in assignments.items()}
            for col in new_values:
                if new_values[col].ndim == 0:
                    new_values[col] = np.full(int(mask.sum()),
                                              new_values[col])
            updated += stored.modify_rows(pid, res.identities[mask],
                                          new_values, t)
        if own_txn:
            trans.commit()
        return updated

    # -------------------------------------------------------------- propagation

    def propagate_updates(self, table: Optional[str] = None,
                          force: bool = False) -> Dict[str, int]:
        """Run update propagation where thresholds are exceeded."""
        stats = {"tail": 0, "full": 0}
        names = [table] if table else list(self.tables)
        for name in names:
            stored = self.tables[name]
            for pid in range(stored.n_partitions):
                if force or stored.needs_propagation(pid):
                    node = self.responsible(name, pid)
                    mode = stored.propagate(pid, writer=node)
                    if mode != "none":
                        stats[mode] += 1
                        self.wal.reset_partition_wal(name, pid, writer=node)
                        self.wal.log_minmax(
                            name, pid,
                            stored.partitions[pid].minmax.to_record(),
                            writer=node,
                        )
                        self._pools[node].invalidate(
                            stored.partitions[pid].base_path
                        )
                        for (tname, column), index in self._indexes.items():
                            if tname == name:
                                index.rebuild_partition(
                                    pid, reader=node,
                                    pool=self.pool_of(node),
                                )
        return stats

    # ------------------------------------------------------------------ failures

    def fail_node(self, name: str) -> Dict[str, object]:
        """Handle a node failure the VectorH way (sections 3-4).

        1. running queries touching the node are unwound and requeued by
           the workload manager (their prepared runs cache the old
           worker set and session master);
        2. dbAgent shrinks the worker set to the survivors;
        3. the affinity map is recomputed by min-cost flow over current
           replica locations and pushed into the placement policy;
        4. the namenode re-replicates under-replicated chunk files, now
           steered by the updated policy;
        5. responsibilities are reassigned (min-cost flow again) and the
           new responsible nodes replay their partition WALs to rebuild
           the PDTs they must now hold in RAM;
        6. the (possibly new) session master resolves in-doubt 2PC
           transactions from the WALs, then queued queries re-dispatch.

        Raises :class:`DataLossError` -- before touching any state -- if
        killing ``name`` would leave some partition with zero alive
        replica holders; that is unrecoverable, not a failover.
        """
        if name not in self.workers:
            raise ReproError(f"{name} is not in the worker set")
        self._check_data_loss(name)
        self.events.emit("cluster", "node_failed", node=name)
        self.workload.on_node_failed(name)
        self.hdfs.mark_node_dead(name)
        self.rm.unregister_node(name)
        survivors = [w for w in self.workers if w != name]
        self.dbagent.viable_machines = [
            m for m in self.dbagent.viable_machines if m != name
        ]
        self.workers = self.dbagent.negotiate_worker_set(
            len(survivors), self.db_path + "/"
        )
        if self.session_master not in self.workers:
            self.session_master = self.workers[0]

        # Recompute affinity + responsibility *jointly* per partition-count
        # group: matching partition ids of co-partitioned tables (e.g.
        # lineitem/orders) must keep moving together, as in Figure 2, or
        # co-located joins stop being local -- and stop being correct.
        moved_partitions = 0
        wal_replayed_bytes = 0
        groups: Dict[int, List[str]] = {}
        for tname, stored in self.tables.items():
            groups.setdefault(stored.n_partitions, []).append(tname)
        for n_parts, tnames in groups.items():
            parts = list(range(n_parts))
            local = {pid: set() for pid in parts}
            for tname in tnames:
                stored = self.tables[tname]
                for pid in parts:
                    for path in stored.partitions[pid].file_paths():
                        for holder in self.hdfs.replica_locations(path):
                            if self.hdfs.nodes[holder].alive:
                                local[pid].add(holder)
            amap = affinity_map(parts, self.workers, local,
                                self.config.replication)
            resp = responsibility_assignment(
                parts, self.workers, {p: set(amap[p]) for p in parts}
            )
            _pin_responsible_into_affinity(amap, resp)
            for tname in tnames:
                stored = self.tables[tname]
                for pid in parts:
                    self.placement.set_affinity(stored.partition_tag(pid),
                                                amap[pid])
                    old = self._responsibility.get((tname, pid))
                    new = resp[pid]
                    self._responsibility[(tname, pid)] = new
                    if old == name or old != new:
                        moved_partitions += 1
                        wal_replayed_bytes += self._replay_pdt(tname, pid, new)
        repaired = self.hdfs.rereplicate()
        self.hdfs.rebalance()
        # presumed-abort recovery: the new session master settles any
        # transaction the dead node left between 2PC prepare and commit
        resolved = self.txn.resolve_in_doubt()
        self.events.emit(
            "cluster", "failover_complete", node=name,
            workers=len(self.workers), moved_partitions=moved_partitions,
            rereplicated_files=repaired,
            resolved_commits=len(resolved["committed"]),
            resolved_aborts=len(resolved["aborted"]),
        )
        self.workload.redispatch()
        return {
            "workers": list(self.workers),
            "moved_partitions": moved_partitions,
            "rereplicated_files": repaired,
            "wal_replayed_bytes": wal_replayed_bytes,
            "resolved": resolved,
        }

    def _check_data_loss(self, dying: str) -> None:
        """Refuse a node kill that would destroy the last copy of data."""
        for tname, stored in self.tables.items():
            for pid in range(stored.n_partitions):
                paths = list(stored.partitions[pid].file_paths())
                wal_path = self.wal.partition_wal_path(tname, pid)
                if self.hdfs.exists(wal_path):
                    paths.append(wal_path)
                for path in paths:
                    holders = [
                        h for h in self.hdfs.replica_locations(path)
                        if h != dying and self.hdfs.nodes[h].alive
                    ]
                    if not holders:
                        self.events.emit("cluster", "data_lost",
                                         table=tname, partition=pid,
                                         node=dying, path=path)
                        raise DataLossError(
                            f"data loss: {dying} holds the last replica of "
                            f"table {tname} partition {pid} ({path})"
                        )

    def _replay_pdt(self, table: str, pid: int, node: str) -> int:
        """New responsible node rebuilds the partition's PDTs from its WAL."""
        stored = self.tables[table]
        records = self.wal.replay_partition(table, pid, reader=node)
        stack = PdtStack(self.config.write_pdt_flush_threshold)
        replayed = 0
        for record in records:
            if record.kind == "commit":
                _txn_id, entries = record.payload
                stack.apply_replicated(entries)
                replayed += 1
            elif record.kind == "minmax":
                stored.partitions[pid].minmax = (
                    stored.partitions[pid].minmax.from_record(record.payload)
                )
        stored.pdt[pid] = stack
        path = self.wal.partition_wal_path(table, pid)
        return self.hdfs.file_size(path) if self.hdfs.exists(path) else 0

    # --------------------------------------------- dynamic worker set (§4)
    #
    # The paper plans to "grow and shrink the worker set (not only
    # cores/RAM) dynamically" in a future release; these methods implement
    # that roadmap item on top of the same min-cost-flow machinery.

    def add_worker(self, name: str, rebalance: bool = True) -> None:
        """Grow the worker set with a fresh node.

        The node registers with HDFS and YARN; with ``rebalance`` the
        affinity maps are recomputed so the newcomer receives an even
        share of partition copies (steered re-replication moves them) and
        responsibilities rebalance onto it.
        """
        if name in self.workers:
            raise ReproError(f"{name} already in the worker set")
        if name not in self.hdfs.nodes or not self.hdfs.nodes[name].alive:
            self.hdfs.add_node(name)
        if name not in self.rm.node_managers:
            self.rm.register_node(name, self.config.cores_per_node,
                                  self.config.memory_per_node_mb)
        if name not in self.dbagent.viable_machines:
            self.dbagent.viable_machines.append(name)
        self._pools.setdefault(
            name, BufferPool(self.hdfs, registry=self.registry, node=name)
        )
        self.workers = self.dbagent.negotiate_worker_set(
            len(self.workers) + 1, self.db_path + "/"
        )
        self.events.emit("cluster", "worker_added", node=name,
                         workers=len(self.workers))
        if rebalance:
            self._reassign_partitions()

    def shrink_to_minimal_footprint(self) -> List[str]:
        """Idle mode: concentrate responsibility on ceil(N/R) workers.

        Section 4's minimal-resource scenario: with replication R every
        partition has a copy on at least one member of a ceil(N/R)-sized
        subset, so an idle VectorH can serve all data from that subset
        with every IO still local. Returns the active subset; the other
        workers keep their replicas but own no partitions.
        """
        import math
        r = min(self.config.replication, len(self.workers))
        n_active = math.ceil(len(self.workers) / r)
        active = self._covering_subset(n_active)
        self._reassign_partitions(responsibility_workers=active)
        self.dbagent.shrink_footprint(len(self.dbagent.slices))
        self.events.emit("cluster", "footprint_shrunk",
                         active=",".join(active))
        return active

    def _covering_subset(self, n_target: int) -> List[str]:
        """Greedy set cover: the smallest worker subset (>= n_target tried
        first) holding a replica of every partition of every table."""
        holder_sets: List[set] = []
        for stored in self.tables.values():
            for pid in range(stored.n_partitions):
                holders = set()
                for path in stored.partitions[pid].file_paths():
                    holders.update(
                        h for h in self.hdfs.replica_locations(path)
                        if self.hdfs.nodes[h].alive
                    )
                if holders:
                    holder_sets.append(holders)
        active: List[str] = []
        uncovered = [s for s in holder_sets]
        while uncovered and len(active) < len(self.workers):
            best = max(
                (w for w in self.workers if w not in active),
                key=lambda w: sum(1 for s in uncovered if w in s),
            )
            active.append(best)
            uncovered = [s for s in uncovered if best not in s]
        while len(active) < min(n_target, len(self.workers)):
            extra = next(w for w in self.workers if w not in active)
            active.append(extra)
        return active

    def restore_full_footprint(self) -> None:
        """Leave idle mode: spread responsibilities over all workers."""
        self._reassign_partitions()
        self.events.emit("cluster", "footprint_restored",
                         workers=len(self.workers))

    def _reassign_partitions(
        self, responsibility_workers: Optional[List[str]] = None
    ) -> None:
        """Joint affinity + responsibility recomputation (as on failover),
        optionally restricting responsibility to a worker subset."""
        resp_workers = responsibility_workers or self.workers
        groups: Dict[int, List[str]] = {}
        for tname, stored in self.tables.items():
            groups.setdefault(stored.n_partitions, []).append(tname)
        for n_parts, tnames in groups.items():
            parts = list(range(n_parts))
            local = {pid: set() for pid in parts}
            for tname in tnames:
                stored = self.tables[tname]
                for pid in parts:
                    for path in stored.partitions[pid].file_paths():
                        for holder in self.hdfs.replica_locations(path):
                            if self.hdfs.nodes[holder].alive:
                                local[pid].add(holder)
            amap = affinity_map(parts, self.workers, local,
                                self.config.replication)
            resp = responsibility_assignment(
                parts, resp_workers,
                {p: set(amap[p]) & set(resp_workers) for p in parts},
            )
            _pin_responsible_into_affinity(amap, resp)
            for tname in tnames:
                stored = self.tables[tname]
                for pid in parts:
                    self.placement.set_affinity(stored.partition_tag(pid),
                                                amap[pid])
                    old = self._responsibility.get((tname, pid))
                    new = resp[pid]
                    if old != new:
                        self._responsibility[(tname, pid)] = new
                        self._replay_pdt(tname, pid, new)
        self.hdfs.rereplicate()
        self.hdfs.rebalance()

    # ----------------------------------------- feedback persistence (§5)

    def _feedback_path(self) -> str:
        return self.db_path + "/meta/feedback.json"

    def checkpoint_feedback(self) -> Dict[str, object]:
        """Persist the cardinality feedback store to HDFS.

        Warmed plans (and therefore a server frontend's prepared-plan
        cache) should not start cold after a cluster restart: the
        observed-cardinality entries are written as JSON under
        ``<db_path>/meta/`` and also returned, so a restart harness can
        carry them into a fresh cluster object directly.
        """
        import json
        state = (self.feedback.export_state() if self.feedback is not None
                 else {"entries": []})
        data = json.dumps(state, sort_keys=True).encode()
        path = self._feedback_path()
        if self.hdfs.exists(path):
            self.hdfs.delete(path)
        self.hdfs.write_file(path, data, writer=self.session_master)
        self.events.emit("cluster", "feedback_checkpoint",
                         entries=len(state["entries"]), bytes=len(data))
        return state

    def restore_feedback(self,
                         state: Optional[Dict[str, object]] = None) -> int:
        """Load feedback entries from ``state`` or the HDFS checkpoint.

        Returns the number of entries restored (0 when feedback is
        disabled or no checkpoint exists).
        """
        import json
        if self.feedback is None:
            return 0
        if state is None:
            path = self._feedback_path()
            if not self.hdfs.exists(path):
                return 0
            state = json.loads(
                self.hdfs.read(path, reader=self.session_master).decode())
        restored = self.feedback.restore_state(state)
        self.events.emit("cluster", "feedback_restored", entries=restored)
        return restored

    # ----------------------------------------------------------------- statistics

    def metrics(self) -> MetricsRegistry:
        """The cluster-wide metrics registry: one coherent snapshot of
        every subsystem (``metrics().snapshot()``), resettable
        (``metrics().reset()``), Prometheus-renderable
        (``metrics().render()``)."""
        return self.registry

    def locality_report(self) -> Dict[str, float]:
        return {
            "short_circuit_fraction": self.hdfs.locality_fraction(),
            "total_bytes_read": float(self.hdfs.total_bytes_read()),
            "network_bytes": float(self.mpi.total_bytes),
            "colocated_fraction": self.placement_audit()["overall"],
        }

    def placement_audit(self) -> Dict[str, float]:
        """Per-table fraction of partitions whose responsible node holds a
        local replica of every partition file; key ``"overall"`` aggregates
        all partitions. Fractions below 1.0 mean responsibility has drifted
        away from the data (e.g. after DataNode failures before
        re-replication catches up) and emit a ``placement_drift`` event."""
        audit: Dict[str, float] = {}
        total = colocated = 0
        for tname, stored in self.tables.items():
            table_total = table_colocated = 0
            for pid in range(stored.n_partitions):
                table_total += 1
                responsible = self.responsible(tname, pid)
                paths = stored.partitions[pid].file_paths()
                if all(self.hdfs.is_local(p, responsible) for p in paths):
                    table_colocated += 1
            audit[tname] = (
                1.0 if table_total == 0 else table_colocated / table_total
            )
            if audit[tname] < 1.0:
                self.events.emit("cluster", "placement_drift", table=tname,
                                 fraction=round(audit[tname], 4))
            total += table_total
            colocated += table_colocated
        audit["overall"] = 1.0 if total == 0 else colocated / total
        return audit

    def reset_io_counters(self) -> None:
        """Deprecated shim: resets the hdfs/net/buffer series through the
        registry (``cluster.metrics().reset()`` clears everything)."""
        for prefix in ("hdfs_", "net_", "buffer_"):
            self.registry.reset(prefix)

    def clear_buffer_pools(self) -> None:
        for pool in self._pools.values():
            pool.clear()
