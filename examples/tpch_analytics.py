"""TPC-H analytics: the paper's evaluation workload, end to end.

Generates a small TPC-H database with the paper's physical design
(section 8 DDL: clustering, co-located partitioning, replicated small
tables), runs a selection of the 22 queries on the vectorized MPP engine,
shows a distributed plan and its Figure-5 rewrite rules, and compares
against the tuple-at-a-time Hive-like baseline.

    python examples/tpch_analytics.py [scale_factor]
"""

import sys
import time

from repro.baselines import CompetitorSystem
from repro.common.config import Config
from repro.common.types import date_to_days as d
from repro.cluster import VectorHCluster
from repro.engine.expressions import Between, Col
from repro.mpp.logical import LAggr, LJoin, LScan, LSelect, LTopN
from repro.tpch import QUERIES, generate_tpch, tpch_schemas
from repro.tpch.schema import LOAD_ORDER


def figure5_query():
    """The paper's section-5 example: top suppliers by lineitem count."""
    li = LSelect(LScan("lineitem", ["l_orderkey", "l_suppkey",
                                    "l_discount"]),
                 Col("l_discount") > 0.03)
    orders = LSelect(
        LScan("orders", ["o_orderkey", "o_orderdate"]),
        Between(Col("o_orderdate"), d("1995-03-05"), d("1997-03-05")))
    joined = LJoin(build=orders, probe=li, build_keys=["o_orderkey"],
                   probe_keys=["l_orderkey"], build_payload=[])
    supp = LScan("supplier", ["s_suppkey", "s_name"])
    with_supp = LJoin(build=supp, probe=joined, build_keys=["s_suppkey"],
                      probe_keys=["l_suppkey"],
                      build_payload=["s_suppkey", "s_name"])
    aggr = LAggr(with_supp, ["s_suppkey", "s_name"],
                 [("l_count", "count", None)])
    return LTopN(aggr, ["l_count"], 10)


def main(scale_factor: float = 0.01):
    print(f"generating TPC-H SF={scale_factor} ...")
    data = generate_tpch(scale_factor)

    config = Config()
    config.block_size = 32 * 1024
    cluster = VectorHCluster(n_nodes=6, config=config)
    schemas = tpch_schemas(n_partitions=12)
    for name in LOAD_ORDER:
        cluster.create_table(schemas[name])
        cluster.bulk_load(name, data[name])
    rows = sum(len(v[list(v)[0]]) for v in data.values())
    print(f"loaded {rows:,} rows across {len(LOAD_ORDER)} tables on "
          f"{len(cluster.workers)} workers\n")

    # The Figure-5 plan: communication only above the partial aggregation.
    print("distributed plan for the paper's example query:")
    print(cluster.explain(figure5_query()))
    print()

    hive = CompetitorSystem("hive", workers=6, rows_per_group=4096)
    hive.load(data)

    print(f"{'query':>6} {'rows':>6} {'vectorh (s)':>12} "
          f"{'hive-like (s)':>14} {'speedup':>8}")
    for q in (1, 3, 5, 6, 10, 14, 19):
        t0 = time.perf_counter()
        batch = QUERIES[q](lambda plan: cluster.query(plan).batch)
        vh = time.perf_counter() - t0
        t0 = time.perf_counter()
        QUERIES[q](hive.runner)
        hv = time.perf_counter() - t0
        print(f"Q{q:>5} {batch.n:>6} {vh:>12.3f} {hv:>14.3f} "
              f"{hv / vh:>7.1f}x")

    q1 = QUERIES[1](lambda plan: cluster.query(plan).batch)
    print("\nQ1 pricing summary:")
    for i in range(q1.n):
        print(f"  {q1.columns['l_returnflag'][i]} "
              f"{q1.columns['l_linestatus'][i]}  "
              f"qty={q1.columns['sum_qty'][i]:>12.0f}  "
              f"orders={int(q1.columns['count_order'][i]):>8}")


if __name__ == "__main__":
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    main(sf)
