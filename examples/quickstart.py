"""Quickstart: spin up a VectorH cluster, load data, run SQL.

    python examples/quickstart.py
"""

import numpy as np

from repro.common.config import Config
from repro.common.types import DATE, DECIMAL, INT64, STRING
from repro.cluster import VectorHCluster
from repro.sql import execute_sql
from repro.storage import Column, TableSchema


def main():
    # A 4-node simulated Hadoop cluster: HDFS with VectorH's instrumented
    # block placement, YARN negotiation through dbAgent, MPI fabric.
    cluster = VectorHCluster(n_nodes=4, config=Config().scaled_for_tests())
    print(f"workers: {cluster.workers}  "
          f"(session master: {cluster.session_master})")

    # A hash-partitioned sales table, clustered (stored sorted) on the
    # sale date so date predicates benefit from MinMax skipping.
    cluster.create_table(TableSchema(
        "sales",
        [Column("sale_id", INT64), Column("store", STRING),
         Column("amount", DECIMAL), Column("sold_on", DATE)],
        primary_key=("sale_id",),
        clustered_on=("sold_on",),
        partition_key=("sale_id",), n_partitions=8,
    ))

    rng = np.random.default_rng(42)
    n = 50_000
    cluster.bulk_load("sales", {
        "sale_id": np.arange(n),
        "store": rng.choice(["berlin", "paris", "amsterdam"], n)
                    .astype(object),
        "amount": np.round(rng.uniform(1, 500, n), 2),
        "sold_on": rng.integers(19_000, 19_365, n).astype(np.int32),
    })
    print(f"loaded {n} rows into "
          f"{len(cluster.hdfs.list_files('/db/sales/'))} HDFS chunk files")

    out = execute_sql(cluster, """
        SELECT store, count(*) AS n, sum(amount) AS revenue
        FROM sales
        WHERE sold_on >= DATE '2022-06-01'
        GROUP BY store
        ORDER BY revenue DESC
    """)
    print("\nrevenue by store (H2 2022):")
    for i in range(out.n):
        print(f"  {out.columns['store'][i]:>10} "
              f"n={int(out.columns['n'][i]):>6} "
              f"revenue={out.columns['revenue'][i]:>12.2f}")

    # Trickle updates land in Positional Delta Trees; scans stay fast and
    # always see the latest state.
    execute_sql(cluster, "INSERT INTO sales VALUES "
                         "(999999, 'berlin', 123.45, DATE '2022-12-31')")
    deleted = execute_sql(cluster, "DELETE FROM sales WHERE amount < 5.0")
    print(f"\ninserted 1 row, deleted {deleted} cheap sales (all in PDTs)")
    entries = sum(s.total_entries() for s in cluster.tables["sales"].pdt)
    print(f"PDT entries buffered in RAM: {entries}")

    # Update propagation flushes the PDTs back into compressed blocks.
    stats = cluster.propagate_updates("sales", force=True)
    print(f"update propagation: {stats}")

    report = cluster.locality_report()
    print(f"\nshort-circuit read fraction: "
          f"{report['short_circuit_fraction']:.0%}")


if __name__ == "__main__":
    main()
