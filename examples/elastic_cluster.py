"""Elasticity and fault tolerance: YARN negotiation, preemption, failover.

Demonstrates sections 3-4 of the paper end to end:

1. dbAgent negotiates a worker set with YARN, preferring data locality;
2. the footprint grows and shrinks in slices of dummy containers; a
   higher-priority Spark job preempts VectorH, which adapts;
3. a node failure triggers min-cost-flow recomputation of the affinity
   map, policy-steered re-replication, responsibility reassignment and
   WAL replay -- with queries correct before, during and after.

    python examples/elastic_cluster.py
"""

import numpy as np

from repro.common.config import Config
from repro.common.types import INT64
from repro.cluster import VectorHCluster
from repro.engine.expressions import Col
from repro.mpp.logical import LAggr, LJoin, LScan
from repro.storage import Column, TableSchema


def total_join_rows(cluster):
    plan = LAggr(
        LJoin(build=LScan("r", ["rk"]), probe=LScan("s", ["sk"]),
              build_keys=["rk"], probe_keys=["sk"]),
        [], [("n", "count", None)])
    return int(cluster.query(plan).batch.columns["n"][0])


def main():
    config = Config().scaled_for_tests()
    cluster = VectorHCluster(n_nodes=4, config=config,
                             yarn_queues={"default": 5, "prod": 9})
    print(f"negotiated worker set: {cluster.workers}")

    # co-partitioned tables R and S (the Figure-2 setup)
    for name, key in (("r", "rk"), ("s", "sk")):
        cluster.create_table(TableSchema(
            name, [Column(key, INT64), Column("v", INT64)],
            partition_key=(key,), n_partitions=12))
        cluster.bulk_load(name, {key: np.arange(5000),
                                 "v": np.zeros(5000, np.int64)})
    print("\npartition responsibility (R) -- matching S partitions are "
          "co-located:")
    for pid, node in sorted(cluster.responsibility_map("r").items()):
        assert node == cluster.responsible("s", pid)
        print(f"  partition {pid:2d} -> {node}")

    # --- elasticity ------------------------------------------------------
    agent = cluster.dbagent
    agent.on_footprint_change = lambda fp: print(f"  footprint now: {fp}")
    print("\ngrowing footprint by 3 slices:")
    agent.grow_footprint(3)

    print("\na high-priority Spark job arrives and preempts us on "
          f"{cluster.workers[0]}:")
    spark = cluster.rm.submit_application("spark-etl", "prod")
    cluster.rm.request_container(
        spark, cluster.workers[0],
        cores=config.cores_per_node,
        memory_mb=config.memory_per_node_mb,
    )
    print("renegotiating back toward the target:")
    cluster.rm.kill_application(spark.app_id)
    agent.negotiate_to_target(3)

    # --- failover -------------------------------------------------------
    before = total_join_rows(cluster)
    print(f"\nco-located join result before failure: {before} rows")
    victim = cluster.workers[-1]
    print(f"killing {victim} ...")
    info = cluster.fail_node(victim)
    print(f"  new worker set:      {info['workers']}")
    print(f"  re-replicated files: {info['rereplicated_files']}")
    print(f"  moved partitions:    {info['moved_partitions']}")
    print(f"  WAL bytes replayed:  {info['wal_replayed_bytes']}")
    after = total_join_rows(cluster)
    print(f"join result after failover: {after} rows "
          f"({'OK' if after == before else 'MISMATCH'})")
    deleted = cluster.delete_where("r", Col("rk") < 100)
    print(f"updates still work: deleted {deleted} rows")


if __name__ == "__main__":
    main()
