"""Spark pipeline: loading HDFS CSV data through the connector (section 7).

Uploads CSV files to simulated HDFS from an edge node, then compares the
three load paths the paper measures: stock vwload, locality-tuned vwload,
and the Spark-VectorH connector whose bipartite matching gets block-local
reads out of the box.

    python examples/spark_pipeline.py
"""

import numpy as np

from repro.common.config import Config
from repro.common.types import INT64
from repro.cluster import VectorHCluster
from repro.connector import spark_load, vwload
from repro.mpp.logical import LAggr, LScan
from repro.storage import Column, TableSchema


def main():
    config = Config().scaled_for_tests()
    config.hdfs_block_size = 16 * 1024
    cluster = VectorHCluster(n_nodes=6, config=config)

    # stage 12 CSV files on HDFS, uploaded from outside the worker set
    rng = np.random.default_rng(1)
    paths = []
    for f in range(12):
        rows = rng.integers(0, 10**6, size=(800, 10))
        rows[:, 0] = np.arange(f * 800, (f + 1) * 800)
        text = "\n".join("|".join(map(str, r)) for r in rows) + "\n"
        path = f"/staging/part-{f:02d}.csv"
        cluster.hdfs.write_file(path, text.encode(), writer=None)
        paths.append(path)
    print(f"staged {len(paths)} CSV files on HDFS")

    def fresh_table(name):
        cluster.create_table(TableSchema(
            name, [Column(f"c{i}", INT64) for i in range(10)],
            partition_key=("c0",), n_partitions=12))

    fresh_table("t_vwload")
    naive = vwload(cluster, "t_vwload", paths)
    fresh_table("t_tuned")
    tuned = vwload(cluster, "t_tuned", paths, prefer_local=True)
    fresh_table("t_spark")
    spark = spark_load(cluster, "t_spark", paths)

    print(f"\n{'path':>16} {'rows':>7} {'local bytes':>12} "
          f"{'remote bytes':>13}")
    for name, rep in (("vwload", naive), ("vwload tuned", tuned),
                      ("spark connector", spark)):
        print(f"{name:>16} {rep.rows_loaded:>7} {rep.bytes_local:>12,} "
              f"{rep.bytes_remote:>13,}")
    print(f"\nconnector matching locality: {spark.locality:.0%} "
          "(paper: works out of the box, close to the hand-tuned load)")
    for op in spark.operators:
        print(f"  ExternalScan@{op.host}: {op.rows_received} rows, "
              f"{op.bytes_received:,} bytes")

    total = cluster.query(LAggr(LScan("t_spark", ["c0"]), [],
                                [("n", "count", None)]))
    print(f"\nrows queryable after connector load: "
          f"{int(total.batch.columns['n'][0])}")


if __name__ == "__main__":
    main()
