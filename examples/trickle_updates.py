"""Trickle updates with Positional Delta Trees (paper sections 2 and 6).

Shows the full PDT lifecycle on an ordered (clustered) table:

* inserts/deletes/modifies buffered positionally in Trans-PDTs;
* snapshot isolation: a long-running reader keeps its snapshot while
  writers commit;
* optimistic concurrency control: a write-write conflict aborts;
* WAL durability and update propagation (tail flush vs full rewrite).

    python examples/trickle_updates.py
"""

import numpy as np

from repro.common.config import Config
from repro.common.types import DATE, INT64, STRING
from repro.cluster import VectorHCluster
from repro.common.errors import TransactionAborted
from repro.engine.expressions import Col
from repro.mpp.logical import LAggr, LScan
from repro.storage import Column, TableSchema


def count(cluster, trans=None):
    plan = LAggr(LScan("events", ["event_id"]), [],
                 [("n", "count", None)])
    return int(cluster.query(plan, trans=trans).batch.columns["n"][0])


def main():
    cluster = VectorHCluster(n_nodes=3, config=Config().scaled_for_tests())
    cluster.create_table(TableSchema(
        "events",
        [Column("event_id", INT64), Column("happened", DATE),
         Column("kind", STRING)],
        primary_key=("event_id",),
        clustered_on=("happened",),  # ordered table: all updates via PDTs
        partition_key=("event_id",), n_partitions=4,
    ))
    rng = np.random.default_rng(0)
    n = 20_000
    cluster.bulk_load("events", {
        "event_id": np.arange(n),
        "happened": np.sort(rng.integers(18_000, 19_000, n)).astype(np.int32),
        "kind": rng.choice(["click", "view", "buy"], n).astype(object),
    })
    print(f"loaded {count(cluster)} events (stored sorted on date)")

    # --- snapshot isolation ----------------------------------------------
    reader = cluster.begin()
    baseline = count(cluster, trans=reader)
    writer = cluster.begin()
    cluster.insert("events", {
        "event_id": np.arange(10**6, 10**6 + 500),
        "happened": rng.integers(18_000, 19_000, 500).astype(np.int32),
        "kind": np.array(["buy"] * 500, object),
    }, trans=writer, force_pdt=True)
    writer.commit()
    print(f"writer committed 500 inserts; "
          f"reader still sees {count(cluster, trans=reader)} "
          f"(began at {baseline}), everyone else {count(cluster)}")
    reader.abort()

    # --- optimistic concurrency control -----------------------------------
    a, b = cluster.begin(), cluster.begin()
    cluster.update_where("events", Col("event_id") == 7,
                         {"kind": Col("kind")}, trans=a)
    cluster.delete_where("events", Col("event_id") == 7, trans=b)
    a.commit()
    try:
        b.commit()
    except TransactionAborted as exc:
        print(f"write-write conflict detected as expected: {exc}")

    # --- PDT state and durability ------------------------------------------
    table = cluster.tables["events"]
    entries = sum(s.total_entries() for s in table.pdt)
    wal_bytes = sum(
        cluster.hdfs.file_size(cluster.wal.partition_wal_path("events", p))
        for p in range(4))
    print(f"PDT entries in RAM: {entries}; per-partition WALs hold "
          f"{wal_bytes} bytes")

    # --- update propagation ---------------------------------------------------
    stats = cluster.propagate_updates("events", force=True)
    print(f"update propagation: {stats['tail']} tail flushes, "
          f"{stats['full']} full rewrites")
    print(f"after propagation: {count(cluster)} events, "
          f"{sum(s.total_entries() for s in table.pdt)} PDT entries")
    dates = cluster.query(
        LScan("events", ["happened"])).batch.columns["happened"]
    # gathered per partition; check each partition stayed sorted
    for pid in range(4):
        img = table.scan_merged(pid, ["happened"]).columns["happened"]
        assert (np.diff(img) >= 0).all()
    print("every partition is still perfectly date-ordered")


if __name__ == "__main__":
    main()
